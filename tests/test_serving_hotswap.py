"""Live artifact hot swap and the serving-robustness invariants around it.

The contract under test: :meth:`ModelRegistry.swap` cuts a served name
over to a new artifact **under traffic** with zero downtime and zero
ambiguity — every response is bit-identical to either the old or the new
artifact's direct batch-invariant forward, never a mixture, never a
drop — across backends, worker counts, and kernels.  Around that sit the
bugs the swap machinery exposed: worker-process plan caches must key by
content fingerprint (not path alone, or an overwritten artifact serves
stale bits); a dead process pool must cost one batch and one rebuild
(not permanent failure); the per-model accounting caches must be
LRU-bounded; and ``InferenceServer.stop(timeout)`` must treat ``timeout``
as one shared deadline rather than per-thread.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.combining import (
    PackedModel,
    PipelineConfig,
    QuantizedPackedModel,
    save_packed,
)
from repro.combining.serialization import (
    PackedArtifactError,
    artifact_fingerprint,
)
from repro.models import build_model
from repro.serving import InferenceServer, ModelRegistry
from repro.serving.procpool import (
    BATCH_PLAN_CACHE_SIZE,
    PLAN_CACHE_SIZE,
    _BATCH_PLAN_CACHE,
    _PLAN_CACHE,
    _run_plan_batch,
)
from repro.serving.registry import ACCOUNTING_PLAN_CACHE_SIZE, ResidentModel
from repro.utils.lru import LRUCache

MODEL_KWARGS = {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                "image_size": 8}
MODEL_SPEC = {"name": "lenet5", "kwargs": MODEL_KWARGS}


def sparsified_lenet5(seed: int = 3, **overrides):
    kwargs = {**MODEL_KWARGS, **overrides}
    model = build_model("lenet5", rng=np.random.default_rng(seed), **kwargs)
    mask_rng = np.random.default_rng(seed + 1)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    return model


def build_packed(seed: int = 3, **overrides) -> PackedModel:
    return PackedModel.from_model(sparsified_lenet5(seed, **overrides),
                                  PipelineConfig(alpha=8, gamma=0.5))


def save_artifact(packed, path: Path, spec: dict = MODEL_SPEC) -> Path:
    return save_packed(packed, path, model_spec=spec, compress=False)


def direct_forward(model, mode: str, batch: np.ndarray,
                   kernel: str = "blocked") -> np.ndarray:
    if mode == "quantized":
        return model.forward(batch, track_errors=False, batch_invariant=True,
                             kernel=kernel)
    return model.forward(batch, mode=mode, batch_invariant=True,
                         kernel=kernel)


@pytest.fixture(scope="module")
def packed_old() -> PackedModel:
    return build_packed(seed=3)


@pytest.fixture(scope="module")
def packed_new() -> PackedModel:
    # Different seed, same architecture: what a retrained checkpoint
    # looks like to the registry (same layer signature, new bits).
    return build_packed(seed=21)


@pytest.fixture
def artifacts(tmp_path, packed_old, packed_new) -> tuple[Path, Path]:
    return (save_artifact(packed_old, tmp_path / "old.npz"),
            save_artifact(packed_new, tmp_path / "new.npz"))


# -- the tentpole: swap serves the new artifact's bits -----------------------
@pytest.mark.parametrize("backend", [
    "thread",
    pytest.param("process", marks=pytest.mark.slow),
])
def test_swap_cuts_over_to_new_artifact(artifacts, packed_old, packed_new,
                                        backend):
    old_path, new_path = artifacts
    batch = np.random.default_rng(5).normal(size=(4, 1, 8, 8))
    ref_old = direct_forward(packed_old, "exact", batch)
    ref_new = direct_forward(packed_new, "exact", batch)
    assert not np.array_equal(ref_old, ref_new)

    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=2, backend=backend) as server:
        assert np.array_equal(server.infer("m", batch), ref_old)
        info = registry.swap("m", new_path)
        assert info["generation"] == 2
        assert info["fingerprint"] == artifact_fingerprint(new_path)
        assert info["previous_fingerprint"] == artifact_fingerprint(old_path)
        assert np.array_equal(server.infer("m", batch), ref_new)
        stats = server.stats()
    assert stats["registry"]["swaps"] == 1
    assert stats["registry"]["generations"]["m"] == 2
    assert stats["totals"]["pool_rebuilds"] == 0
    assert stats["totals"]["failures"] == 0


def test_swap_back_and_forth_restores_old_bits(artifacts, packed_old,
                                               packed_new):
    old_path, new_path = artifacts
    batch = np.random.default_rng(6).normal(size=(3, 1, 8, 8))
    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=1) as server:
        server.infer("m", batch)
        registry.swap("m", new_path)
        assert np.array_equal(server.infer("m", batch),
                              direct_forward(packed_new, "exact", batch))
        registry.swap("m", old_path)
        assert np.array_equal(server.infer("m", batch),
                              direct_forward(packed_old, "exact", batch))
    assert registry.stats()["generations"]["m"] == 3


# -- hot swap under concurrent traffic ---------------------------------------
@pytest.mark.parametrize("backend,workers,kernel", [
    ("thread", 2, "blocked"),
    ("thread", 3, "loops"),
    pytest.param("process", 2, "blocked", marks=pytest.mark.slow),
])
def test_swap_under_concurrent_traffic_is_old_or_new_bits(
        artifacts, packed_old, packed_new, backend, workers, kernel):
    """Clients hammer infer() while swap() runs repeatedly: every response
    must be bit-identical to the old or the new artifact's direct forward
    (in-flight batches finish on the old immutable plan, later batches
    serve the new one — nothing in between exists), with zero dropped or
    hung requests."""
    old_path, new_path = artifacts
    rng = np.random.default_rng(9)
    requests = [rng.normal(size=(int(rng.integers(1, 4)), 1, 8, 8))
                for _ in range(30)]
    references = [(direct_forward(packed_old, "exact", request, kernel),
                   direct_forward(packed_new, "exact", request, kernel))
                  for request in requests]

    registry = ModelRegistry()
    registry.register("m", old_path)
    outcomes: dict[int, str] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         workers=workers, backend=backend,
                         kernel=kernel) as server:
        def client(offset: int) -> None:
            pending = [(index, server.submit("m", requests[index]))
                       for index in range(offset, len(requests), 3)]
            for index, request in pending:
                try:
                    output = request.result(timeout=60.0)
                except BaseException as error:  # noqa: BLE001
                    with lock:
                        errors.append(error)
                    continue
                ref_old, ref_new = references[index]
                if np.array_equal(output, ref_old):
                    verdict = "old"
                elif np.array_equal(output, ref_new):
                    verdict = "new"
                else:
                    verdict = "ambiguous"
                with lock:
                    outcomes[index] = verdict

        clients = [threading.Thread(target=client, args=(offset,))
                   for offset in range(3)]
        for thread in clients:
            thread.start()
        targets = (new_path, old_path)
        for index in range(4):
            time.sleep(0.005)
            registry.swap("m", targets[index % 2])
        for thread in clients:
            thread.join()
        stats = server.stats()

    assert not errors
    assert len(outcomes) == len(requests)
    assert "ambiguous" not in outcomes.values()
    assert stats["totals"]["failures"] == 0
    assert stats["registry"]["swaps"] == 4
    assert stats["registry"]["generations"]["m"] == 5


# -- the stale-cache bugfix --------------------------------------------------
def test_thread_backend_overwritten_artifact_keeps_registered_bits(
        artifacts, packed_old):
    """Overwriting an artifact in place (no swap) must not change what the
    resident entry serves — the plan was loaded at registration content."""
    old_path, new_path = artifacts
    batch = np.random.default_rng(7).normal(size=(2, 1, 8, 8))
    ref_old = direct_forward(packed_old, "exact", batch)
    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=1) as server:
        assert np.array_equal(server.infer("m", batch), ref_old)
        old_path.write_bytes(new_path.read_bytes())
        assert np.array_equal(server.infer("m", batch), ref_old)


@pytest.mark.slow
def test_process_backend_overwrite_then_swap_serves_new_bits(
        artifacts, packed_old, packed_new):
    """The regression the fingerprint keying fixes: overwrite the artifact
    on disk, then swap — warm workers must serve the *new* bits on the
    next batch instead of a plan cached under the bare path."""
    old_path, new_path = artifacts
    batch = np.random.default_rng(8).normal(size=(2, 1, 8, 8))
    ref_old = direct_forward(packed_old, "exact", batch)
    ref_new = direct_forward(packed_new, "exact", batch)
    registry = ModelRegistry()
    registry.register("m", old_path)
    # One worker so the overwrite phase deterministically hits its warm
    # plan cache (a cold worker would instead fail the batch loudly on
    # the fingerprint check — covered below).
    with InferenceServer(registry, workers=1, backend="process") as server:
        assert np.array_equal(server.infer("m", batch), ref_old)
        # Overwrite in place: the warm worker keeps serving the registered
        # content (cached under its fingerprint) — consistent, not stale.
        old_path.write_bytes(new_path.read_bytes())
        assert np.array_equal(server.infer("m", batch), ref_old)
        # The swap re-probes the file; its new fingerprint misses every
        # worker cache, so the very next batch serves the new bits.
        registry.swap("m", old_path)
        assert np.array_equal(server.infer("m", batch), ref_new)


def test_worker_detects_fingerprint_mismatch_on_load(artifacts):
    """A worker-side cache miss re-verifies the file against the registry's
    fingerprint: an artifact overwritten behind the registry's back fails
    loudly instead of serving ambiguous bits."""
    old_path, _ = artifacts
    batch = np.random.default_rng(3).normal(size=(2, 1, 8, 8))
    with pytest.raises(PackedArtifactError,
                       match="changed on disk.*swap"):
        _run_plan_batch(str(old_path), "exact", batch,
                        fingerprint="not-the-real-fingerprint")


# -- swap validation ---------------------------------------------------------
def test_swap_rejects_unknown_name_and_missing_file(artifacts):
    old_path, new_path = artifacts
    registry = ModelRegistry()
    registry.register("m", old_path)
    with pytest.raises(KeyError, match="unknown model"):
        registry.swap("nope", new_path)
    with pytest.raises(FileNotFoundError):
        registry.swap("m", new_path.parent / "never-saved.npz")


def test_swap_rejects_architecture_mismatch_and_keeps_serving(
        tmp_path, artifacts, packed_old):
    old_path, _ = artifacts
    other_kwargs = {**MODEL_KWARGS, "scale": 0.5}
    mismatched = save_artifact(
        build_packed(seed=4, scale=0.5), tmp_path / "mismatched.npz",
        spec={"name": "lenet5", "kwargs": other_kwargs})
    batch = np.random.default_rng(2).normal(size=(2, 1, 8, 8))
    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=1) as server:
        with pytest.raises(ValueError, match="different packed-layer"):
            registry.swap("m", mismatched)
        # A failed swap must not degrade the live entry.
        assert np.array_equal(server.infer("m", batch),
                              direct_forward(packed_old, "exact", batch))
    assert registry.stats()["swaps"] == 0
    assert registry.stats()["generations"]["m"] == 1


def test_swap_rejects_float_artifact_for_quantized_entry(
        tmp_path, packed_old, artifacts):
    old_path, _ = artifacts
    quantized = QuantizedPackedModel(packed_old, bits=8)
    quantized.calibrate(np.random.default_rng(7).normal(size=(8, 1, 8, 8)))
    quantized_path = save_artifact(quantized, tmp_path / "int8.npz")
    registry = ModelRegistry()
    registry.register("m", quantized_path, mode="quantized")
    with pytest.raises(ValueError, match="float packed model"):
        registry.swap("m", old_path)


# -- swap_live ---------------------------------------------------------------
def test_swap_live_pins_the_replacement(artifacts, packed_old, packed_new):
    old_path, _ = artifacts
    batch = np.random.default_rng(4).normal(size=(2, 1, 8, 8))
    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=1) as server:
        assert np.array_equal(server.infer("m", batch),
                              direct_forward(packed_old, "exact", batch))
        info = registry.swap_live("m", packed_new)
        assert info["generation"] == 2 and info["fingerprint"] is None
        assert np.array_equal(server.infer("m", batch),
                              direct_forward(packed_new, "exact", batch))
    # The entry is now pinned: no artifact path or fingerprint to ship.
    assert registry.registration_info("m") == (None, "exact", None)
    assert registry.stats()["swaps"] == 1


def test_swap_live_rejects_architecture_mismatch(artifacts):
    old_path, _ = artifacts
    registry = ModelRegistry()
    registry.register("m", old_path)
    with pytest.raises(ValueError, match="different packed-layer"):
        registry.swap_live("m", build_packed(seed=4, scale=0.5))


# -- bounded accounting caches -----------------------------------------------
def test_lru_cache_bounds_and_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh: "b" is now oldest
    cache.put("c", 3)
    assert len(cache) == 2
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.setdefault("c", 99) == 3
    with pytest.raises(ValueError, match="maxsize"):
        LRUCache(0)


def test_resident_accounting_cache_is_bounded(packed_old):
    resident = ResidentModel("m", "exact", packed_old.compile_plan())
    batch = np.random.default_rng(0).normal(size=(1, 1, 8, 8))
    _, observed = resident.forward_traced(batch)
    for num_samples in range(1, ACCOUNTING_PLAN_CACHE_SIZE + 9):
        resident.batch_plan_traced(num_samples, observed)
    assert resident.accounting_cache_size <= ACCOUNTING_PLAN_CACHE_SIZE
    # The hot key stays resident across the churn.
    hits_before = resident.plan_cache_hits
    resident.batch_plan_traced(ACCOUNTING_PLAN_CACHE_SIZE + 8, observed)
    assert resident.plan_cache_hits == hits_before + 1


def test_worker_process_caches_are_bounded(tmp_path, packed_old):
    """The worker-module caches (exercised here in-process) stay within
    their bounds under many generations and batch sizes."""
    _PLAN_CACHE.clear()
    _BATCH_PLAN_CACHE.clear()
    paths = []
    for index in range(PLAN_CACHE_SIZE + 2):
        paths.append(save_artifact(build_packed(seed=30 + index),
                                   tmp_path / f"gen{index}.npz"))
    rng = np.random.default_rng(1)
    for index, path in enumerate(paths):
        batch = rng.normal(size=(1 + index, 1, 8, 8))
        _run_plan_batch(str(path), "exact", batch,
                        fingerprint=artifact_fingerprint(path))
    assert len(_PLAN_CACHE) <= PLAN_CACHE_SIZE
    hot = paths[-1]
    fingerprint = artifact_fingerprint(hot)
    for batch_size in range(1, BATCH_PLAN_CACHE_SIZE + 6):
        _run_plan_batch(str(hot), "exact",
                        rng.normal(size=(batch_size, 1, 8, 8)),
                        fingerprint=fingerprint)
    assert len(_BATCH_PLAN_CACHE) <= BATCH_PLAN_CACHE_SIZE
    _PLAN_CACHE.clear()
    _BATCH_PLAN_CACHE.clear()


# -- broken-pool recovery ----------------------------------------------------
@pytest.mark.slow
def test_broken_pool_fails_one_batch_then_rebuilds(artifacts, packed_old):
    old_path, _ = artifacts
    batch = np.random.default_rng(5).normal(size=(2, 1, 8, 8))
    ref = direct_forward(packed_old, "exact", batch)
    registry = ModelRegistry()
    registry.register("m", old_path)
    with InferenceServer(registry, workers=2, backend="process") as server:
        assert np.array_equal(server.infer("m", batch), ref)
        for _ in range(2):
            server._pool._executor.submit(os._exit, 1)
        time.sleep(0.3)
        failures = 0
        for _ in range(4):
            try:
                assert np.array_equal(server.infer("m", batch), ref)
            except AssertionError:
                raise
            except Exception:  # noqa: BLE001 - the poisoned batch
                failures += 1
        # Only the in-flight batches failed; one incident, one rebuild.
        assert 1 <= failures <= 2
        assert server.stats()["totals"]["pool_rebuilds"] == 1
        assert np.array_equal(server.infer("m", batch), ref)
        stats = server.stats()
    assert stats["totals"]["pool_rebuilds"] == 1
    assert stats["totals"]["failures"] == failures


# -- stop() deadline ---------------------------------------------------------
def test_stop_timeout_is_a_shared_deadline(artifacts, packed_old):
    """Three wedged workers must not stretch stop(1.0) to ~3 seconds: the
    timeout is one monotonic deadline shared by every join."""
    old_path, _ = artifacts
    batch = np.random.default_rng(5).normal(size=(2, 1, 8, 8))
    registry = ModelRegistry()
    registry.register("m", old_path)
    server = InferenceServer(registry, workers=3, max_batch=1,
                             max_wait=0.0).start()
    release = threading.Event()
    resident = registry.get("m")
    original = resident.forward_traced

    def wedged(samples, kernel="blocked"):
        release.wait(timeout=30.0)
        return original(samples, kernel=kernel)

    resident.forward_traced = wedged
    pending = [server.submit("m", batch) for _ in range(3)]
    time.sleep(0.2)  # let every worker pick up a wedged batch
    started = time.monotonic()
    server.stop(timeout=1.0)
    elapsed = time.monotonic() - started
    assert elapsed < 2.0, f"stop(1.0) took {elapsed:.2f}s with 3 workers"
    assert server._threads  # wedged workers survive for a later stop()
    release.set()
    server.stop(timeout=10.0)
    assert not server._threads
    reference = direct_forward(packed_old, "exact", batch)
    for request in pending:  # every accepted request still got its answer
        assert np.array_equal(request.result(timeout=5.0), reference)
