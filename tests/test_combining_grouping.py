"""Tests for Algorithm 2: column grouping under alpha / gamma constraints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import ColumnGrouping, count_conflicts, group_columns


def sparse(rng, rows=20, cols=30, density=0.25):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


# -- ColumnGrouping container -----------------------------------------------------------

def test_grouping_validates_complete_partition():
    with pytest.raises(ValueError):
        ColumnGrouping([[0, 1]], num_columns=3, num_rows=4, alpha=8, gamma=0.5)


def test_grouping_rejects_duplicate_columns():
    with pytest.raises(ValueError):
        ColumnGrouping([[0, 1], [1, 2]], num_columns=3, num_rows=4, alpha=8, gamma=0.5)


def test_grouping_rejects_out_of_range_columns():
    with pytest.raises(ValueError):
        ColumnGrouping([[0, 5]], num_columns=2, num_rows=4, alpha=8, gamma=0.5)


def test_group_of_and_assignment_are_consistent(rng):
    grouping = group_columns(sparse(rng), alpha=4, gamma=0.5)
    assignment = grouping.as_assignment()
    for column in range(grouping.num_columns):
        assert assignment[column] == grouping.group_of(column)


# -- group_columns ------------------------------------------------------------------------

def test_every_column_is_assigned_exactly_once(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    all_columns = sorted(c for group in grouping.groups for c in group)
    assert all_columns == list(range(matrix.shape[1]))


def test_alpha_one_gives_singleton_groups(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=1, gamma=0.5)
    assert grouping.num_groups == matrix.shape[1]
    assert all(len(group) == 1 for group in grouping.groups)


def test_group_sizes_never_exceed_alpha(rng):
    matrix = sparse(rng)
    for alpha in (2, 4, 8):
        grouping = group_columns(matrix, alpha=alpha, gamma=0.9)
        assert max(grouping.group_sizes()) <= alpha


def test_gamma_zero_produces_conflict_free_groups(rng):
    matrix = sparse(rng, density=0.15)
    grouping = group_columns(matrix, alpha=8, gamma=0.0)
    for group in grouping.groups:
        assert count_conflicts(matrix, group) == 0


def test_limited_conflict_condition_holds_for_every_group(rng):
    matrix = sparse(rng, rows=30, cols=40, density=0.3)
    gamma = 0.5
    grouping = group_columns(matrix, alpha=8, gamma=gamma)
    for group in grouping.groups:
        assert count_conflicts(matrix, group) <= gamma * matrix.shape[0]


def test_larger_alpha_never_increases_group_count(rng):
    matrix = sparse(rng, density=0.15)
    counts = [group_columns(matrix, alpha=a, gamma=0.5).num_groups for a in (1, 2, 4, 8)]
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_combining_reduces_columns_substantially_for_sparse_matrices(rng):
    matrix = sparse(rng, rows=64, cols=96, density=0.1)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    assert grouping.num_groups <= matrix.shape[1] // 3


def test_disjoint_columns_are_combined_even_with_gamma_zero():
    # Columns with disjoint supports never conflict, so gamma=0 can combine them.
    matrix = np.zeros((4, 4))
    matrix[0, 0] = 1.0
    matrix[1, 1] = 2.0
    matrix[2, 2] = 3.0
    matrix[3, 3] = 4.0
    grouping = group_columns(matrix, alpha=4, gamma=0.0)
    assert grouping.num_groups == 1


def test_dense_matrix_cannot_be_combined_with_gamma_zero(rng):
    matrix = rng.normal(size=(6, 5))  # fully dense
    grouping = group_columns(matrix, alpha=8, gamma=0.0)
    assert grouping.num_groups == 5


def test_empty_matrix_gives_empty_grouping():
    grouping = group_columns(np.zeros((4, 0)), alpha=8, gamma=0.5)
    assert grouping.num_groups == 0


def test_policies_all_produce_valid_partitions(rng):
    matrix = sparse(rng)
    for policy in ("dense-first", "first-fit", "random"):
        grouping = group_columns(matrix, alpha=8, gamma=0.5, policy=policy,
                                 rng=np.random.default_rng(0))
        assert sorted(c for g in grouping.groups for c in g) == list(range(matrix.shape[1]))


def test_unknown_policy_raises(rng):
    with pytest.raises(ValueError):
        group_columns(sparse(rng), policy="best-fit")


def test_parameter_validation(rng):
    matrix = sparse(rng)
    with pytest.raises(ValueError):
        group_columns(matrix, alpha=0)
    with pytest.raises(ValueError):
        group_columns(matrix, gamma=-0.1)
    with pytest.raises(ValueError):
        group_columns(np.zeros(5))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000),
       rows=st.integers(4, 24),
       cols=st.integers(1, 24),
       density=st.floats(0.05, 0.6),
       alpha=st.integers(1, 8),
       gamma=st.floats(0.0, 1.0))
def test_property_grouping_invariants(seed, rows, cols, density, alpha, gamma):
    """For any sparse matrix and any (alpha, gamma):

    * every column appears in exactly one group,
    * no group exceeds alpha columns,
    * every group satisfies the limited-conflict condition.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    seen = sorted(c for group in grouping.groups for c in group)
    assert seen == list(range(cols))
    assert all(len(group) <= alpha for group in grouping.groups)
    budget = gamma * rows
    assert all(count_conflicts(matrix, group) <= budget + 1e-9
               for group in grouping.groups)
