"""Tests for tile-count arithmetic (Section 5.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import group_columns, tile_count, tiles_for_layer, tiles_for_model


def test_tile_count_exact_fit():
    assert tile_count(32, 32, 32, 32) == 1
    assert tile_count(64, 64, 32, 32) == 4


def test_tile_count_rounds_up():
    assert tile_count(33, 31, 32, 32) == 2
    assert tile_count(96, 94, 32, 32) == 9


def test_tile_count_zero_dimension():
    assert tile_count(0, 10, 32, 32) == 0
    assert tile_count(10, 0, 32, 32) == 0


def test_tile_count_validation():
    with pytest.raises(ValueError):
        tile_count(-1, 5, 32, 32)
    with pytest.raises(ValueError):
        tile_count(5, 5, 0, 32)


def test_tiles_for_layer_without_grouping_uses_all_columns(rng):
    matrix = rng.normal(size=(96, 94))
    assert tiles_for_layer(matrix, 32, 32) == 9


def test_tiles_for_layer_with_grouping_uses_combined_columns(rng):
    matrix = rng.normal(size=(96, 94)) * (rng.random((96, 94)) < 0.16)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed_tiles = tiles_for_layer(matrix, 32, 32, grouping)
    assert packed_tiles < 9
    assert packed_tiles == tile_count(96, grouping.num_groups, 32, 32)


def test_tiles_for_model_baseline_matches_per_layer_counts(rng):
    matrices = [rng.normal(size=(40, 50)), rng.normal(size=(64, 64))]
    counts = tiles_for_model(matrices, 32, 32, alpha=1)
    assert counts == [tile_count(40, 50, 32, 32), tile_count(64, 64, 32, 32)]


def test_tiles_for_model_combining_reduces_counts(rng):
    matrices = [rng.normal(size=(64, 80)) * (rng.random((64, 80)) < 0.15)
                for _ in range(3)]
    baseline = tiles_for_model(matrices, 32, 32, alpha=1)
    combined = tiles_for_model(matrices, 32, 32, alpha=8, gamma=0.5)
    assert sum(combined) < sum(baseline)


def test_tiles_for_layer_rejects_non_2d(rng):
    with pytest.raises(ValueError):
        tiles_for_layer(rng.normal(size=(4,)), 32, 32)


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 200), cols=st.integers(1, 200),
       array_rows=st.integers(1, 64), array_cols=st.integers(1, 64))
def test_property_tile_count_covers_matrix(rows, cols, array_rows, array_cols):
    """tiles * array area always covers the matrix, and removing one tile
    row or column would not."""
    tiles = tile_count(rows, cols, array_rows, array_cols)
    row_tiles = -(-rows // array_rows)
    col_tiles = -(-cols // array_cols)
    assert tiles == row_tiles * col_tiles
    assert row_tiles * array_rows >= rows
    assert col_tiles * array_cols >= cols
    assert (row_tiles - 1) * array_rows < rows
    assert (col_tiles - 1) * array_cols < cols
