"""Tests for the synthetic datasets, loaders, and augmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Dataset,
    SyntheticImageConfig,
    augment_batch,
    make_synthetic_dataset,
    random_crop,
    random_horizontal_flip,
    synthetic_cifar10,
    synthetic_mnist,
)


# -- synthetic generation ------------------------------------------------------------

def test_synthetic_mnist_shape_and_labels():
    data = synthetic_mnist(50, image_size=10)
    assert data.images.shape == (50, 1, 10, 10)
    assert data.num_classes == 10
    assert data.labels.min() >= 0 and data.labels.max() < 10


def test_synthetic_cifar_has_three_channels():
    data = synthetic_cifar10(30, image_size=8)
    assert data.image_shape == (3, 8, 8)


def test_same_seed_gives_identical_datasets():
    a = synthetic_mnist(20, image_size=8, seed=3, split_seed=0)
    b = synthetic_mnist(20, image_size=8, seed=3, split_seed=0)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)


def test_different_split_seed_shares_class_structure_but_not_samples():
    a = synthetic_mnist(20, image_size=8, seed=3, split_seed=0)
    b = synthetic_mnist(20, image_size=8, seed=3, split_seed=1)
    assert not np.array_equal(a.images, b.images)


def test_synthetic_dataset_is_learnable_signal():
    """Class prototypes must be separable: nearest-prototype beats chance."""
    config = SyntheticImageConfig(num_classes=4, channels=1, image_size=8, noise_std=0.3,
                                  max_shift=0, seed=0)
    train = make_synthetic_dataset(config, 200, split_seed=0)
    test = make_synthetic_dataset(config, 100, split_seed=1)
    prototypes = np.stack([train.images[train.labels == c].mean(axis=0) for c in range(4)])
    differences = test.images[:, None] - prototypes[None]
    distances = np.sqrt((differences ** 2).sum(axis=(2, 3, 4)))
    predictions = distances.argmin(axis=1)
    assert (predictions == test.labels).mean() > 0.6


def test_make_synthetic_dataset_validates_sample_count():
    config = SyntheticImageConfig(num_classes=10)
    with pytest.raises(ValueError):
        make_synthetic_dataset(config, 5)


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticImageConfig(num_classes=1)
    with pytest.raises(ValueError):
        SyntheticImageConfig(image_size=2)
    with pytest.raises(ValueError):
        SyntheticImageConfig(noise_std=-1.0)


# -- Dataset container ------------------------------------------------------------------

def test_dataset_validates_shapes():
    with pytest.raises(ValueError):
        Dataset(np.zeros((4, 3, 8)), np.zeros(4, dtype=int), 10)
    with pytest.raises(ValueError):
        Dataset(np.zeros((4, 1, 8, 8)), np.zeros(3, dtype=int), 10)


def test_dataset_validates_label_range():
    labels = np.array([0, 1, 2, 11])
    with pytest.raises(ValueError):
        Dataset(np.zeros((4, 1, 8, 8)), labels, 10)


def test_split_partitions_all_samples():
    data = synthetic_mnist(40, image_size=8)
    first, second = data.split(10, rng=np.random.default_rng(0))
    assert len(first) == 10
    assert len(second) == 30


def test_fraction_is_stratified_and_keeps_every_class():
    data = synthetic_mnist(200, image_size=8)
    subset = data.fraction(0.05, rng=np.random.default_rng(0))
    assert set(np.unique(subset.labels)) == set(range(10))
    assert len(subset) <= 0.15 * len(data)


def test_fraction_one_returns_full_copy():
    data = synthetic_mnist(20, image_size=8)
    subset = data.fraction(1.0)
    assert len(subset) == len(data)
    subset.images[:] = 0
    assert not np.array_equal(subset.images, data.images)


def test_fraction_validates_ratio():
    data = synthetic_mnist(20, image_size=8)
    with pytest.raises(ValueError):
        data.fraction(0.0)
    with pytest.raises(ValueError):
        data.fraction(1.5)


def test_subset_selects_indices():
    data = synthetic_mnist(20, image_size=8)
    subset = data.subset(np.array([0, 5, 7]))
    assert len(subset) == 3
    np.testing.assert_array_equal(subset.labels, data.labels[[0, 5, 7]])


# -- DataLoader ----------------------------------------------------------------------------

def test_loader_yields_all_samples_once():
    data = synthetic_mnist(25, image_size=8)
    loader = DataLoader(data, batch_size=8, shuffle=True, rng=np.random.default_rng(0))
    seen = sum(len(labels) for _, labels in loader)
    assert seen == 25
    assert len(loader) == 4


def test_loader_drop_last_skips_partial_batch():
    data = synthetic_mnist(25, image_size=8)
    loader = DataLoader(data, batch_size=8, drop_last=True)
    assert len(loader) == 3
    assert sum(len(labels) for _, labels in loader) == 24


def test_loader_without_shuffle_preserves_order():
    data = synthetic_mnist(16, image_size=8)
    loader = DataLoader(data, batch_size=4, shuffle=False)
    labels = np.concatenate([batch_labels for _, batch_labels in loader])
    np.testing.assert_array_equal(labels, data.labels)


def test_loader_validates_batch_size():
    data = synthetic_mnist(16, image_size=8)
    with pytest.raises(ValueError):
        DataLoader(data, batch_size=0)


# -- augmentation ---------------------------------------------------------------------------

def test_random_crop_preserves_shape(rng):
    images = rng.normal(size=(4, 3, 8, 8))
    out = random_crop(images, padding=2, rng=rng)
    assert out.shape == images.shape


def test_random_crop_zero_padding_is_identity(rng):
    images = rng.normal(size=(2, 1, 6, 6))
    np.testing.assert_array_equal(random_crop(images, 0, rng), images)


def test_horizontal_flip_probability_one_reverses_width(rng):
    images = rng.normal(size=(3, 1, 4, 4))
    flipped = random_horizontal_flip(images, 1.0, rng)
    np.testing.assert_array_equal(flipped, images[:, :, :, ::-1])


def test_horizontal_flip_probability_zero_is_identity(rng):
    images = rng.normal(size=(3, 1, 4, 4))
    np.testing.assert_array_equal(random_horizontal_flip(images, 0.0, rng), images)


def test_augment_batch_shape(rng):
    images = rng.normal(size=(5, 3, 8, 8))
    assert augment_batch(images, rng).shape == images.shape


def test_augmentation_validation(rng):
    images = rng.normal(size=(2, 1, 4, 4))
    with pytest.raises(ValueError):
        random_crop(images, -1, rng)
    with pytest.raises(ValueError):
        random_horizontal_flip(images, 1.5, rng)
