"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    args = parser.parse_args(["pack", "--rows", "10", "--cols", "8"])
    assert args.command == "pack"
    args = parser.parse_args(["train", "--model", "lenet5"])
    assert args.command == "train" and args.model == "lenet5"
    args = parser.parse_args(["experiment", "fig14b"])
    assert args.command == "experiment" and args.name == "fig14b"


def test_experiment_registry_covers_every_table_and_figure():
    expected = {"fig13a", "fig13b", "fig13c", "fig14b", "fig15a", "fig15b", "fig16",
                "table1", "table2", "table3", "sec72", "ablation-grouping",
                "quant-sweep"}
    assert set(EXPERIMENTS) == expected


def test_pack_command_prints_report(capsys):
    exit_code = main(["pack", "--rows", "64", "--cols", "60", "--density", "0.15"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "columns" in output
    assert "tiles" in output
    assert "multiplexing degree" in output


def test_pack_command_engines_print_identical_reports(capsys):
    assert main(["pack", "--rows", "48", "--cols", "40", "--engine", "fast"]) == 0
    fast_output = capsys.readouterr().out
    assert main(["pack", "--rows", "48", "--cols", "40", "--engine", "reference"]) == 0
    reference_output = capsys.readouterr().out
    assert fast_output == reference_output


def test_pack_command_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pack", "--engine", "turbo"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pack", "--prune-engine", "turbo"])


def test_pack_command_prune_engines_print_identical_reports(capsys):
    assert main(["pack", "--rows", "48", "--cols", "40",
                 "--prune-engine", "fast"]) == 0
    fast_output = capsys.readouterr().out
    assert main(["pack", "--rows", "48", "--cols", "40",
                 "--prune-engine", "reference"]) == 0
    reference_output = capsys.readouterr().out
    assert fast_output == reference_output


def test_pack_command_loads_matrix_from_npy(tmp_path, capsys, rng):
    matrix = rng.normal(size=(40, 30)) * (rng.random((40, 30)) < 0.2)
    path = tmp_path / "matrix.npy"
    np.save(path, matrix)
    exit_code = main(["pack", "--matrix", str(path)])
    assert exit_code == 0
    assert "columns" in capsys.readouterr().out


def test_pack_command_rejects_non_2d_matrix(tmp_path, capsys, rng):
    path = tmp_path / "bad.npy"
    np.save(path, rng.normal(size=(4,)))
    assert main(["pack", "--matrix", str(path)]) == 2


def test_pack_model_command_prints_packed_model_report(capsys):
    exit_code = main(["pack-model", "--network", "lenet5"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "packed model: lenet5" in output
    assert "combined cols" in output
    assert "model totals" in output
    assert "pruned by Algorithm 3" in output


def test_pack_model_command_workers_print_identical_reports(capsys):
    assert main(["pack-model", "--network", "lenet5"]) == 0
    serial_output = capsys.readouterr().out
    assert main(["pack-model", "--network", "lenet5", "--workers", "3"]) == 0
    parallel_output = capsys.readouterr().out
    assert parallel_output == serial_output


def test_pack_model_command_engines_print_identical_reports(capsys):
    assert main(["pack-model", "--network", "lenet5",
                 "--engine", "fast", "--prune-engine", "fast"]) == 0
    fast_output = capsys.readouterr().out
    assert main(["pack-model", "--network", "lenet5",
                 "--engine", "reference", "--prune-engine", "reference"]) == 0
    reference_output = capsys.readouterr().out
    assert fast_output == reference_output


def test_pack_model_command_respects_density_and_alpha(capsys):
    assert main(["pack-model", "--network", "lenet5", "--density", "0.3",
                 "--alpha", "4", "--gamma", "0.25"]) == 0
    output = capsys.readouterr().out
    assert "at 30% density" in output
    assert "alpha=4" in output


def test_pack_model_command_rejects_unknown_network():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pack-model", "--network", "alexnet"])


def test_quantize_model_command_prints_report_and_bits_sweep(capsys):
    exit_code = main(["quantize-model", "--model", "lenet5", "--bits", "8",
                      "--calibration-batches", "1", "--batch-size", "32"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "quantized packed model: lenet5 at 8 bits" in output
    assert "divergence rmse" in output
    assert "exact-prediction agreement" in output
    assert "accuracy vs bits:" in output
    for bits in (2, 4, 8):  # the sweep rows of BITS_SWEEP
        assert f"\n{bits} " in output


def test_quantize_model_command_rejects_out_of_range_bits(capsys):
    assert main(["quantize-model", "--bits", "1"]) == 2
    assert main(["quantize-model", "--bits", "9"]) == 2
    assert "--bits must be in [2, 8]" in capsys.readouterr().err


def test_quantize_model_command_rejects_out_of_range_percentile(capsys):
    assert main(["quantize-model", "--calibration", "percentile",
                 "--percentile", "150"]) == 2
    assert main(["quantize-model", "--percentile", "0"]) == 2
    assert "--percentile must be in (0, 100]" in capsys.readouterr().err


@pytest.mark.slow
def test_quantize_model_command_workers_print_identical_reports(capsys):
    arguments = ["quantize-model", "--batch-size", "32"]
    assert main(arguments) == 0
    serial_output = capsys.readouterr().out
    assert main(arguments + ["--workers", "3"]) == 0
    parallel_output = capsys.readouterr().out
    assert parallel_output == serial_output


@pytest.mark.slow
def test_quantize_model_command_engines_print_identical_reports(capsys):
    arguments = ["quantize-model", "--batch-size", "32"]
    assert main(arguments + ["--engine", "fast", "--prune-engine", "fast"]) == 0
    fast_output = capsys.readouterr().out
    assert main(arguments + ["--engine", "reference",
                             "--prune-engine", "reference"]) == 0
    reference_output = capsys.readouterr().out
    assert fast_output == reference_output


def test_quantize_model_command_percentile_calibration_runs(capsys):
    assert main(["quantize-model", "--calibration", "percentile",
                 "--percentile", "99.0", "--batch-size", "32"]) == 0
    assert "calibration=percentile" in capsys.readouterr().out


def test_save_packed_round_trips_through_load_packed(tmp_path, capsys):
    path = tmp_path / "lenet5.npz"
    exit_code = main(["save-packed", "--model", "lenet5", "--out", str(path),
                      "--image-size", "8"])
    assert exit_code == 0
    assert path.exists()
    assert "saved packed artifact" in capsys.readouterr().out
    exit_code = main(["load-packed", "--path", str(path)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "kind packed" in output
    assert "nn model embedded (lenet5)" in output
    assert "fingerprints verified" in output


def test_save_packed_quantized_artifact(tmp_path, capsys):
    path = tmp_path / "lenet5.int8.npz"
    exit_code = main(["save-packed", "--model", "lenet5", "--out", str(path),
                      "--image-size", "8", "--quantize", "--bits", "6",
                      "--no-compress"])
    assert exit_code == 0
    assert "saved quantized artifact" in capsys.readouterr().out
    assert main(["load-packed", "--path", str(path)]) == 0
    output = capsys.readouterr().out
    assert "kind quantized" in output
    assert "quantized at 6 bits" in output
    assert "frozen scales" in output


def test_save_packed_rejects_out_of_range_bits(tmp_path, capsys):
    assert main(["save-packed", "--out", str(tmp_path / "x.npz"),
                 "--quantize", "--bits", "12"]) == 2
    assert "--bits must be in [2, 8]" in capsys.readouterr().err


def test_load_packed_inspects_artifacts_saved_without_a_model_spec(tmp_path,
                                                                   capsys):
    """The inspection command must not demand an architecture it can show
    a report without."""
    from repro.combining import PackedModel, PipelineConfig, save_packed
    from repro.models import build_model

    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=8, rng=np.random.default_rng(0))
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    path = save_packed(packed, tmp_path / "specless.npz")  # no model_spec
    assert main(["load-packed", "--path", str(path)]) == 0
    output = capsys.readouterr().out
    assert "nn model state only (load with model=...)" in output
    assert "fingerprints verified" in output


def test_load_packed_reports_missing_and_corrupt_artifacts(tmp_path, capsys):
    assert main(["load-packed", "--path", str(tmp_path / "ghost.npz")]) == 2
    assert "does not exist" in capsys.readouterr().err
    bad = tmp_path / "bad.npz"
    np.savez(bad, data=np.arange(3))
    assert main(["load-packed", "--path", str(bad)]) == 2
    assert "not a packed artifact" in capsys.readouterr().err


@pytest.mark.slow
def test_serve_bench_command_prints_benchmark(tmp_path, capsys):
    path = tmp_path / "lenet5.npz"
    assert main(["save-packed", "--model", "lenet5", "--out", str(path),
                 "--image-size", "8"]) == 0
    capsys.readouterr()
    exit_code = main(["serve-bench", "--path", str(path),
                      "--requests", "8", "--max-batch", "4",
                      "--max-wait", "0.001"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "cold start" in output
    assert "one-at-a-time" in output
    assert "bit-identical to direct forward: True" in output


def test_serve_bench_rejects_bad_inputs(tmp_path, capsys):
    assert main(["serve-bench", "--path", str(tmp_path / "ghost.npz")]) == 2
    assert "does not exist" in capsys.readouterr().err
    path = tmp_path / "lenet5.npz"
    assert main(["save-packed", "--model", "lenet5", "--out", str(path),
                 "--image-size", "8"]) == 0
    capsys.readouterr()
    assert main(["serve-bench", "--path", str(path),
                 "--max-wait", "5.0"]) == 2
    assert "--max-wait" in capsys.readouterr().err


def test_train_command_runs_tiny_configuration(capsys):
    exit_code = main([
        "train", "--model", "lenet5", "--train-samples", "96", "--image-size", "8",
        "--epochs-per-round", "1", "--final-epochs", "1", "--model-scale", "0.5",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "final accuracy" in output
    assert "packing eff." in output


def test_experiment_command_runs_structural_experiment(capsys):
    exit_code = main(["experiment", "fig14b"])
    assert exit_code == 0
    assert "tile reduction" in capsys.readouterr().out


def test_experiment_command_accepts_workers(capsys):
    """--workers fans the sweep out over a process pool; the printed report
    must match the serial run exactly (order-stable parallel results)."""
    assert main(["experiment", "fig14b"]) == 0
    serial_output = capsys.readouterr().out
    assert main(["experiment", "fig14b", "--workers", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert parallel_output == serial_output


def test_experiment_command_workers_on_serial_experiment_warns(capsys, monkeypatch):
    """An experiment without a parallel sweep still runs, with a stderr note."""
    import repro.cli as cli_module

    calls: list[int] = []
    monkeypatch.setitem(cli_module.EXPERIMENTS, "fig13a", lambda: calls.append(1))
    assert main(["experiment", "fig13a", "--workers", "4"]) == 0
    assert calls == [1]
    assert "no parallel sweep" in capsys.readouterr().err


def test_experiment_command_passes_workers_to_parallel_runner(monkeypatch):
    """--workers must reach runners that declare a workers parameter."""
    import repro.cli as cli_module

    received: dict[str, int] = {}

    def fake_runner(workers: int = 1):
        received["workers"] = workers

    monkeypatch.setitem(cli_module.EXPERIMENTS, "fig15a", fake_runner)
    assert main(["experiment", "fig15a", "--workers", "3"]) == 0
    assert received == {"workers": 3}


def test_experiment_command_rejects_non_positive_workers():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig14b", "--workers", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig14b", "--workers", "-2"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
