"""Tests for the SRAM model and buffer sizing (Figure 6's memory subsystem)."""

from __future__ import annotations

import pytest

from repro.hardware.sram import (
    BufferRequirements,
    SRAMConfig,
    buffer_requirements,
    estimate_sram,
)


def test_anchor_macro_reproduces_anchor_values():
    estimate = estimate_sram(SRAMConfig(capacity_bytes=16 * 1024))
    assert estimate.access_energy_pj_per_byte == pytest.approx(1.25)
    assert estimate.area_mm2 == pytest.approx(0.05)
    assert estimate.leakage_mw == pytest.approx(0.5)


def test_larger_macros_cost_more_per_access_and_area():
    small = estimate_sram(SRAMConfig(capacity_bytes=16 * 1024))
    large = estimate_sram(SRAMConfig(capacity_bytes=64 * 1024))
    assert large.access_energy_pj_per_byte > small.access_energy_pj_per_byte
    assert large.area_mm2 > small.area_mm2
    assert large.leakage_mw > small.leakage_mw


def test_tiny_macros_have_floored_access_energy():
    tiny = estimate_sram(SRAMConfig(capacity_bytes=256))
    assert tiny.access_energy_pj_per_byte >= 0.25 * 1.25


def test_banking_reduces_access_energy_at_small_area_cost():
    flat = estimate_sram(SRAMConfig(capacity_bytes=64 * 1024, banks=1))
    banked = estimate_sram(SRAMConfig(capacity_bytes=64 * 1024, banks=4))
    assert banked.access_energy_pj_per_byte < flat.access_energy_pj_per_byte
    assert banked.area_mm2 == pytest.approx(flat.area_mm2, rel=0.5)


def test_read_and_write_energy_scale_with_bytes():
    estimate = estimate_sram(SRAMConfig(capacity_bytes=16 * 1024))
    assert estimate.read_energy_pj(100) == pytest.approx(125.0)
    assert estimate.write_energy_pj(100) > estimate.read_energy_pj(100)
    with pytest.raises(ValueError):
        estimate.read_energy_pj(-1)


def test_sram_config_validation():
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=1024, word_bytes=0)
    with pytest.raises(ValueError):
        SRAMConfig(capacity_bytes=1024, banks=0)


def test_buffer_requirements_cover_weights_and_activations():
    layers = [(96, 17), (192, 32)]
    buffers = buffer_requirements(layers, max_spatial=32, max_channels=192)
    # Weights plus one byte of channel-select metadata per packed cell.
    assert buffers.weight_buffer_bytes == (96 * 17 + 192 * 32) * 2
    # Input buffer is double-buffered.
    assert buffers.input_buffer_bytes == 2 * 192 * 32 * 32
    assert buffers.output_buffer_bytes == 192 * 32 * 32
    assert buffers.total_bytes == (buffers.weight_buffer_bytes
                                   + buffers.input_buffer_bytes
                                   + buffers.output_buffer_bytes)
    assert buffers.total_kilobytes == pytest.approx(buffers.total_bytes / 1024)


def test_buffer_requirements_single_buffered_option():
    single = buffer_requirements([(8, 2)], max_spatial=8, max_channels=8,
                                 double_buffered=False)
    double = buffer_requirements([(8, 2)], max_spatial=8, max_channels=8,
                                 double_buffered=True)
    assert double.input_buffer_bytes == 2 * single.input_buffer_bytes


def test_buffer_requirements_validation():
    with pytest.raises(ValueError):
        buffer_requirements([(8, 2)], max_spatial=0, max_channels=8)
