"""Tests for the Module base class and Sequential container."""

from __future__ import annotations

import numpy as np

from repro.nn import Dense, Module, ReLU, Sequential


def make_mlp(rng):
    return Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng))


def test_parameters_discovered_through_nesting(rng):
    model = make_mlp(rng)
    params = model.parameters()
    # Two Dense layers, each with weight and bias.
    assert len(params) == 4


def test_named_parameters_have_unique_paths(rng):
    model = make_mlp(rng)
    names = [name for name, _ in model.named_parameters()]
    assert len(names) == len(set(names)) == 4


def test_modules_enumerates_all_submodules(rng):
    model = make_mlp(rng)
    modules = model.modules()
    assert model in modules
    assert sum(isinstance(m, Dense) for m in modules) == 2
    assert sum(isinstance(m, ReLU) for m in modules) == 1


def test_train_and_eval_toggle_every_submodule(rng):
    model = make_mlp(rng)
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_zero_grad_clears_all_parameter_gradients(rng):
    model = make_mlp(rng)
    for param in model.parameters():
        param.grad += 1.0
    model.zero_grad()
    assert all(np.all(p.grad == 0) for p in model.parameters())


def test_sequential_forward_backward_roundtrip(rng):
    model = make_mlp(rng)
    x = rng.normal(size=(5, 4))
    out = model.forward(x)
    assert out.shape == (5, 3)
    grad_in = model.backward(np.ones_like(out))
    assert grad_in.shape == x.shape


def test_sequential_supports_len_getitem_iteration(rng):
    model = make_mlp(rng)
    assert len(model) == 3
    assert isinstance(model[0], Dense)
    assert [type(m).__name__ for m in model] == ["Dense", "ReLU", "Dense"]


def test_nonzero_count_sums_parameters(rng):
    model = Sequential(Dense(3, 2, bias=False, rng=rng))
    assert model.nonzero_count() == 6
    model[0].weight.set_mask(np.array([[1, 0, 0], [0, 1, 0]]))
    assert model.nonzero_count() == 2


def test_parameters_in_lists_and_dicts_are_found(rng):
    class Container(Module):
        def __init__(self):
            super().__init__()
            self.branches = [Dense(2, 2, rng=rng), Dense(2, 2, rng=rng)]
            self.lookup = {"head": Dense(2, 1, rng=rng)}

        def forward(self, x):
            return x

        def backward(self, grad):
            return grad

    model = Container()
    assert len(model.parameters()) == 6
    assert len(model.modules()) == 4  # container + three Dense layers
