"""Tests for the row-permutation scheme of Section 3.5."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import (
    apply_column_permutation,
    apply_row_permutation,
    column_combine_prune,
    group_columns,
    pack_filter_matrix,
    permutation_from_groups,
    plan_cross_layer_permutations,
    remap_groups_contiguous,
)


def sparse(rng, rows=16, cols=16, density=0.3):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def test_permutation_lists_channels_group_by_group(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    permutation = permutation_from_groups(grouping)
    expected = [c for group in grouping.groups for c in group]
    np.testing.assert_array_equal(permutation, expected)
    assert sorted(permutation) == list(range(matrix.shape[1]))


def test_row_and_column_permutations_are_inverse_relabelings(rng):
    matrix = sparse(rng)
    permutation = np.random.default_rng(0).permutation(matrix.shape[0])
    permuted = apply_row_permutation(matrix, permutation)
    # Row i of the permuted matrix is row permutation[i] of the original.
    for i, original_row in enumerate(permutation):
        np.testing.assert_array_equal(permuted[i], matrix[original_row])


def test_invalid_permutations_are_rejected(rng):
    matrix = sparse(rng)
    with pytest.raises(ValueError):
        apply_row_permutation(matrix, np.zeros(matrix.shape[0], dtype=int))
    with pytest.raises(ValueError):
        apply_column_permutation(matrix, np.arange(matrix.shape[1] - 1))


def test_remapped_groups_are_contiguous_ranges(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    remapped = remap_groups_contiguous(grouping)
    offset = 0
    for group in remapped.groups:
        assert group == list(range(offset, offset + len(group)))
        offset += len(group)
    assert offset == grouping.num_columns


def test_network_function_is_preserved_by_cross_layer_permutation(rng):
    """Permuting layer i's rows and layer i+1's columns by the same
    permutation leaves the two-layer composition unchanged — the key fact
    that makes row permutation free (Section 3.5)."""
    layer1 = sparse(rng, rows=12, cols=8)
    layer2 = sparse(rng, rows=10, cols=12)
    grouping2 = group_columns(layer2, alpha=4, gamma=0.5)
    permutation = permutation_from_groups(grouping2)

    data = rng.normal(size=(8, 5))
    reference = layer2 @ (layer1 @ data)

    permuted_layer1 = apply_row_permutation(layer1, permutation)
    permuted_layer2 = apply_column_permutation(layer2, permutation)
    np.testing.assert_allclose(permuted_layer2 @ (permuted_layer1 @ data), reference)


def test_permuted_grouping_is_equivalent_after_column_relabeling(rng):
    """Column combining commutes with the relabeling: packing the permuted
    layer with contiguous groups gives the same packed weights as packing
    the original layer with the original groups (up to group order)."""
    layer = sparse(rng, rows=14, cols=10)
    grouping = group_columns(layer, alpha=4, gamma=0.5)
    permutation = permutation_from_groups(grouping)
    permuted = apply_column_permutation(layer, permutation)
    contiguous = remap_groups_contiguous(grouping)

    original_pruned, _ = column_combine_prune(layer, grouping)
    permuted_pruned, _ = column_combine_prune(permuted, contiguous)
    np.testing.assert_allclose(permuted_pruned, original_pruned[:, permutation])

    packed_original = pack_filter_matrix(layer, grouping)
    packed_permuted = pack_filter_matrix(permuted, contiguous)
    np.testing.assert_allclose(packed_original.weights, packed_permuted.weights)


def test_plan_cross_layer_permutations_shapes(rng):
    layers = [sparse(rng, rows=8, cols=6), sparse(rng, rows=10, cols=8),
              sparse(rng, rows=4, cols=10)]
    groupings = [group_columns(m, alpha=4, gamma=0.5) for m in layers]
    permutations = plan_cross_layer_permutations(groupings)
    assert len(permutations) == 3
    # Layer l is permuted by layer l+1's grouping (over layer l's rows).
    assert len(permutations[0]) == layers[1].shape[1]
    assert len(permutations[1]) == layers[2].shape[1]
    # The last layer keeps its natural order.
    np.testing.assert_array_equal(permutations[-1], np.arange(layers[2].shape[0]))


def test_permutation_from_incomplete_grouping_raises():
    from repro.combining.grouping import ColumnGrouping
    grouping = ColumnGrouping([[0], [1]], num_columns=2, num_rows=3, alpha=2, gamma=0.0)
    grouping.groups.append([5])  # corrupt it after validation
    with pytest.raises(ValueError):
        permutation_from_groups(grouping)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_permutation_is_bijection(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(12, 9)) * (rng.random((12, 9)) < 0.4)
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    permutation = permutation_from_groups(grouping)
    assert sorted(permutation.tolist()) == list(range(9))
