"""The observability primitives: exactly-mergeable histograms, the
metrics registry and its exports, the bounded trace ring, and the
logging helpers.

The property everything else leans on: histogram state is integer
(bucket counts, nanosecond sums) over schedule-independent bucket
edges, so *any* partition of an observation stream across histograms,
merged back in *any* order, reproduces the single-stream state bit for
bit.  Percentiles, the Prometheus exposition, and the server's merged
worker snapshots are all deterministic functions of that state.
"""

from __future__ import annotations

import json
import logging
import random

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Trace,
    TraceBuffer,
    TraceIdAllocator,
    latency_edges,
    merge_snapshots,
    prometheus_from_snapshot,
    summarize_histogram_state,
)
from repro.utils.logging import KeyValueFormatter, get_logger


def histogram_state(histogram: Histogram) -> dict:
    return histogram.to_dict()


# -- bucket edges -------------------------------------------------------------
def test_latency_edges_are_deterministic_constants():
    assert latency_edges() == latency_edges()
    edges = latency_edges(lower=1e-3, decades=2, per_decade=4)
    assert len(edges) == 2 * 4 + 1
    assert edges[0] == pytest.approx(1e-3)
    assert edges[-1] == pytest.approx(1e-1)
    assert list(edges) == sorted(edges)


def test_latency_edges_validate():
    with pytest.raises(ValueError):
        latency_edges(lower=0.0)
    with pytest.raises(ValueError):
        latency_edges(decades=0)


# -- counters / gauges --------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_takes_last_value():
    gauge = Gauge()
    gauge.set(3.5)
    gauge.set(1.0)
    assert gauge.value == 1.0


# -- histograms ---------------------------------------------------------------
def test_histogram_summary_and_quantiles():
    histogram = Histogram()
    for value in [0.001] * 90 + [0.1] * 9 + [1.0]:
        histogram.record(value)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == pytest.approx(0.001)
    assert summary["max"] == pytest.approx(1.0)
    # p50 lands in the 1ms bucket, p99 in the 100ms one, and every
    # quantile is clamped to the observed max.
    assert summary["p50"] <= 0.0013
    assert 0.1 <= summary["p99"] <= 0.13
    assert histogram.quantile(1.0) == pytest.approx(1.0)
    assert summary["mean"] == pytest.approx((0.09 + 0.9 + 1.0) / 100)


def test_histogram_quantile_validates_and_handles_empty():
    histogram = Histogram()
    assert histogram.quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        histogram.quantile(0.0)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_histogram_clamps_negative_observations():
    histogram = Histogram()
    histogram.record(-1.0)
    assert histogram.count == 1
    assert histogram.sum_ns == 0
    assert histogram.min == 0.0


def test_histogram_merge_is_exact_and_order_independent():
    """The tentpole property: any partition of a stream across any
    number of histograms, merged in any order, is bit-equal to the
    single-stream histogram — counts, integer-nanosecond sums, min/max."""
    rng = random.Random(7)
    observations = [rng.uniform(1e-6, 10.0) for _ in range(500)]
    reference = Histogram()
    for value in observations:
        reference.record(value)

    for seed in range(3):
        shuffle = random.Random(seed)
        parts = [Histogram() for _ in range(5)]
        for value in observations:
            parts[shuffle.randrange(5)].record(value)
        order = list(range(5))
        shuffle.shuffle(order)
        merged = Histogram()
        for index in order:
            merged.merge(parts[index])
        assert histogram_state(merged) == histogram_state(reference)


def test_histogram_merge_accepts_serialized_state_and_roundtrips():
    histogram = Histogram()
    for value in (0.002, 0.5, 0.0321):
        histogram.record(value)
    state = histogram.to_dict()
    assert json.loads(json.dumps(state)) == state  # JSON-able
    rebuilt = Histogram.from_dict(state)
    assert histogram_state(rebuilt) == state
    assert summarize_histogram_state(state) == histogram.summary()


def test_histogram_merge_rejects_mismatched_edges():
    left = Histogram()
    right = Histogram(edges=latency_edges(per_decade=3))
    with pytest.raises(ValueError, match="edges"):
        left.merge(right)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram(edges=[1.0, 1.0, 2.0])
    with pytest.raises(ValueError):
        Histogram(edges=[])


# -- registry -----------------------------------------------------------------
def test_registry_keys_are_label_order_insensitive():
    registry = MetricsRegistry()
    a = registry.histogram("latency", labels={"model": "m", "layer": "l"})
    b = registry.histogram("latency", labels={"layer": "l", "model": "m"})
    assert a is b
    assert registry.counter("hits") is registry.counter("hits")


def test_registry_snapshot_merge_matches_single_registry():
    """Partition a workload across registries (worker processes in
    miniature); merging their snapshots in any order must reproduce the
    single-registry snapshot exactly."""
    rng = random.Random(3)
    observations = [(f"m{index % 2}", rng.uniform(1e-5, 1.0))
                    for index in range(200)]
    reference = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    for model, value in observations:
        reference.histogram("latency", labels={"model": model}).record(value)
        reference.counter("requests", labels={"model": model}).inc()
        worker = workers[rng.randrange(3)]
        worker.histogram("latency", labels={"model": model}).record(value)
        worker.counter("requests", labels={"model": model}).inc()

    snapshots = [worker.snapshot() for worker in workers]
    assert (merge_snapshots(snapshots)
            == merge_snapshots(list(reversed(snapshots)))
            == reference.snapshot())


def test_registry_merge_snapshot_accumulates_in_place():
    registry = MetricsRegistry()
    registry.counter("n").inc(2)
    other = MetricsRegistry()
    other.counter("n").inc(3)
    other.gauge("g").set(7.0)
    registry.merge_snapshot(other.snapshot())
    snapshot = registry.snapshot()
    assert snapshot["counters"]["n"] == 5
    assert snapshot["gauges"]["g"]["value"] == 7.0


def test_gauge_merge_is_order_independent():
    """Gauges carry a process-wide sequence stamp in snapshots and the
    highest stamp wins, so merging worker snapshots in any order yields
    the same value — no 'canonical order' burden on callers."""
    early = MetricsRegistry()
    early.gauge("depth").set(3.0)
    late = MetricsRegistry()
    late.gauge("depth").set(9.0)  # set after `early`: higher sequence

    forward = MetricsRegistry()
    forward.merge_snapshot(early.snapshot())
    forward.merge_snapshot(late.snapshot())
    backward = MetricsRegistry()
    backward.merge_snapshot(late.snapshot())
    backward.merge_snapshot(early.snapshot())
    assert forward.gauge("depth").value == 9.0
    assert backward.gauge("depth").value == 9.0
    assert merge_snapshots([early.snapshot(), late.snapshot()]) \
        == merge_snapshots([late.snapshot(), early.snapshot()])


def test_gauge_merge_accepts_legacy_bare_numbers():
    """Pre-sequence snapshots stored gauges as bare floats; they merge
    at sequence 0, so any stamped value beats them."""
    registry = MetricsRegistry()
    registry.merge_snapshot({"counters": {}, "gauges": {"g": 4.0},
                             "histograms": {}})
    assert registry.gauge("g").value == 4.0
    stamped = MetricsRegistry()
    stamped.gauge("g").set(6.0)
    registry.merge_snapshot(stamped.snapshot())
    registry.merge_snapshot({"counters": {}, "gauges": {"g": 4.0},
                             "histograms": {}})
    assert registry.gauge("g").value == 6.0


def test_prometheus_label_values_are_escaped():
    """Backslash, double-quote, and newline in label *values* must be
    escaped per the Prometheus text-format spec — a hostile model name
    cannot produce invalid exposition."""
    registry = MetricsRegistry()
    hostile = 'mo"del\\v1\nx'
    registry.counter("serving_requests", labels={"model": hostile}).inc()
    text = registry.prometheus_text()
    expected = 'serving_requests{model="mo\\"del\\\\v1\\nx"} 1'
    assert expected in text.splitlines()
    # No raw newline survives inside any exposition line.
    for line in text.splitlines():
        assert line.startswith(("#", "serving_requests"))
    # Escaping happens at key construction, so lookups stay stable.
    assert registry.counter("serving_requests",
                            labels={"model": hostile}).value == 1


def test_prometheus_exposition_shape():
    registry = MetricsRegistry()
    registry.counter("serving_requests", labels={"model": "m"}).inc(3)
    registry.gauge("resident_models").set(2)
    histogram = registry.histogram("serving_service_seconds",
                                   labels={"model": "m"})
    histogram.record(0.002)
    histogram.record(0.004)
    text = registry.prometheus_text()
    lines = text.splitlines()
    assert "# TYPE serving_requests counter" in lines
    assert 'serving_requests{model="m"} 3' in lines
    assert "# TYPE resident_models gauge" in lines
    assert "# TYPE serving_service_seconds histogram" in lines
    assert 'serving_service_seconds_count{model="m"} 2' in lines
    # Buckets are cumulative and end at +Inf == count.
    buckets = [line for line in lines
               if line.startswith("serving_service_seconds_bucket")]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)
    assert buckets[-1].startswith(
        'serving_service_seconds_bucket{model="m",le="+Inf"}')
    assert counts[-1] == 2
    # The exposition is a pure function of the snapshot.
    assert prometheus_from_snapshot(registry.snapshot()) == text


# -- tracing ------------------------------------------------------------------
def test_trace_spans_and_duration():
    trace = Trace("req-000001", "m")
    trace.add_span(Span("enqueue", 1.0, 2.0))
    trace.add_span(Span("forward", 2.0, 2.5, {"backend": "thread"}))
    assert trace.seconds == pytest.approx(1.5)
    assert trace.span("forward").attributes["backend"] == "thread"
    assert trace.span("missing") is None
    data = trace.to_dict()
    assert [span["name"] for span in data["spans"]] == ["enqueue", "forward"]
    assert data["spans"][0]["seconds"] == pytest.approx(1.0)


def test_trace_wall_clock_anchor():
    """A trace pins the wall-clock epoch at creation; spans stay
    monotonic-relative, and ``wall_time`` projects any monotonic instant
    onto the wall timeline for cross-process correlation."""
    trace = Trace("req-000001", "m", epoch=1_000_000.0, anchor=50.0)
    trace.add_span(Span("forward", 51.0, 51.5))
    assert trace.epoch == 1_000_000.0
    assert trace.wall_time(51.0) == pytest.approx(1_000_001.0)
    data = trace.to_dict()
    assert data["epoch"] == 1_000_000.0
    assert data["anchor"] == 50.0
    # Defaults come from the real clocks and land in the present.
    live = Trace("req-000002", "m")
    assert live.epoch > 1e9
    assert live.to_dict()["epoch"] == live.epoch


def test_trace_id_allocator_is_monotonic():
    ids = TraceIdAllocator(prefix="t")
    assert [ids.allocate() for _ in range(3)] == ["t-000001", "t-000002",
                                                 "t-000003"]


def test_trace_buffer_bounds_memory_under_sustained_load():
    """The ring must retain exactly ``capacity`` traces no matter how
    many are recorded — sustained load cannot grow it."""
    buffer = TraceBuffer(capacity=64)
    total = 10_000
    for index in range(total):
        buffer.record(Trace(f"req-{index:06d}", "m"))
    assert len(buffer) == 64
    stats = buffer.stats()
    assert stats == {"capacity": 64, "retained": 64, "recorded": total,
                     "dropped": total - 64}
    snapshot = buffer.snapshot()
    assert len(snapshot) == 64
    # Oldest-first, and precisely the most recent 64 recorded.
    expected = [f"req-{index:06d}" for index in range(total - 64, total)]
    assert [trace["trace_id"] for trace in snapshot] == expected
    assert [trace["trace_id"] for trace in buffer.snapshot(limit=3)] \
        == expected[-3:]


def test_trace_buffer_capacity_zero_disables_retention():
    buffer = TraceBuffer(capacity=0)
    buffer.record(Trace("req-000001", "m"))
    assert len(buffer) == 0
    assert buffer.snapshot() == []
    assert buffer.stats()["recorded"] == 1
    with pytest.raises(ValueError):
        TraceBuffer(capacity=-1)


# -- logging ------------------------------------------------------------------
def test_get_logger_applies_level_on_every_call():
    """The original helper latched the first caller's level onto the
    root and silently ignored later ``level=`` arguments."""
    logger = get_logger("obs_level_probe", level=logging.INFO)
    assert logger.getEffectiveLevel() == logging.INFO
    assert not logger.isEnabledFor(logging.DEBUG)
    relogger = get_logger("obs_level_probe", level=logging.DEBUG)
    assert relogger is logger
    assert logger.isEnabledFor(logging.DEBUG)
    get_logger("obs_level_probe", level=logging.WARNING)
    assert not logger.isEnabledFor(logging.INFO)
    # Other loggers are untouched by this one's level changes.
    other = get_logger("obs_level_other", level=logging.INFO)
    assert other.isEnabledFor(logging.INFO)


def test_get_logger_keeps_single_shared_handler():
    get_logger("obs_handler_a")
    get_logger("obs_handler_b", level=logging.DEBUG)
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    assert isinstance(root.handlers[0].formatter, KeyValueFormatter)


def test_key_value_formatter_renders_extra_fields():
    formatter = KeyValueFormatter("%(name)s %(levelname)s: %(message)s")
    record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                               "swap done", (), None)
    record.model = "lenet5"
    record.batches = 3
    rendered = formatter.format(record)
    assert rendered == "repro.x INFO: swap done [batches=3 model=lenet5]"
    plain = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                              "no extras", (), None)
    assert formatter.format(plain) == "repro.x INFO: no extras"


def test_logger_emits_structured_extras_through_shared_handler():
    # Swap the shared handler's stream rather than fighting over which
    # stderr object it bound at configuration time.
    import io

    logger = get_logger("obs_kv_probe", level=logging.INFO)
    handler = logging.getLogger("repro").handlers[0]
    captured = io.StringIO()
    original = handler.setStream(captured)
    try:
        logger.info("served batch", extra={"model": "m", "samples": 4})
    finally:
        handler.setStream(original)
    assert "served batch [model=m samples=4]" in captured.getvalue()
