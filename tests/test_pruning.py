"""Tests for magnitude pruning, the beta schedule, and sparsity accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import LeNet5
from repro.nn.parameter import Parameter
from repro.pruning import (
    BetaSchedule,
    layer_sparsity_report,
    magnitude_prune_matrix,
    magnitude_prune_parameter,
    nonzero_count,
    prune_model_layers,
    sparsity,
)


# -- magnitude_prune_matrix -------------------------------------------------------

def test_prunes_smallest_magnitudes_first():
    matrix = np.array([[1.0, -0.1, 3.0], [0.2, -5.0, 0.05]])
    mask = magnitude_prune_matrix(matrix, fraction=0.5)
    # Half of six weights pruned: the three smallest magnitudes 0.05, 0.1, 0.2.
    assert mask.sum() == 3
    assert mask[0, 1] == 0 and mask[1, 2] == 0 and mask[1, 0] == 0
    assert mask[0, 2] == 1 and mask[1, 1] == 1


def test_fraction_zero_keeps_everything(rng):
    matrix = rng.normal(size=(5, 5))
    mask = magnitude_prune_matrix(matrix, 0.0)
    assert mask.sum() == 25


def test_fraction_one_prunes_everything(rng):
    matrix = rng.normal(size=(4, 4))
    mask = magnitude_prune_matrix(matrix, 1.0)
    assert mask.sum() == 0


def test_existing_mask_is_respected_and_shrunk(rng):
    matrix = rng.normal(size=(10, 10))
    first = magnitude_prune_matrix(matrix, 0.5)
    second = magnitude_prune_matrix(matrix, 0.5, mask=first)
    # The second pass removes half of the *remaining* weights.
    assert second.sum() == 25
    # Never resurrects pruned weights.
    assert np.all(second <= first)


def test_invalid_fraction_raises(rng):
    with pytest.raises(ValueError):
        magnitude_prune_matrix(rng.normal(size=(2, 2)), 1.5)


def test_mask_shape_mismatch_raises(rng):
    with pytest.raises(ValueError):
        magnitude_prune_matrix(rng.normal(size=(2, 2)), 0.5, mask=np.ones((3, 3)))


@settings(max_examples=30, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.0),
       rows=st.integers(2, 8), cols=st.integers(2, 8))
def test_property_prune_count_matches_fraction(fraction, rows, cols):
    """Pruning removes exactly floor(fraction * remaining) weights."""
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(rows, cols))
    mask = magnitude_prune_matrix(matrix, fraction)
    expected_removed = int(np.floor(fraction * rows * cols))
    assert int(mask.sum()) == rows * cols - expected_removed


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_surviving_weights_dominate_pruned_ones(seed):
    """Every kept weight has magnitude >= every pruned weight."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(6, 6))
    mask = magnitude_prune_matrix(matrix, 0.4)
    kept = np.abs(matrix[mask == 1])
    pruned = np.abs(matrix[mask == 0])
    if kept.size and pruned.size:
        assert kept.min() >= pruned.max() - 1e-12


# -- parameter / model level --------------------------------------------------------

def test_magnitude_prune_parameter_installs_mask(rng):
    param = Parameter(rng.normal(size=(4, 4)))
    removed = magnitude_prune_parameter(param, 0.25)
    assert removed == 4
    assert param.nonzero_count() == 12
    assert param.mask is not None


def test_prune_model_layers_touches_every_packable_layer(rng):
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=rng)
    before = sum(layer.weight.nonzero_count() for _, layer in model.packable_layers())
    removed = prune_model_layers(model, 0.5)
    after = sum(layer.weight.nonzero_count() for _, layer in model.packable_layers())
    assert before - after == removed
    assert removed > 0


def test_prune_model_layers_requires_packable_layers(rng):
    with pytest.raises(TypeError):
        prune_model_layers(object(), 0.5)


# -- beta schedule ----------------------------------------------------------------------

def test_beta_schedule_decays_geometrically():
    schedule = BetaSchedule(0.2, decay=0.9)
    assert schedule.value == pytest.approx(0.2)
    schedule.step()
    assert schedule.value == pytest.approx(0.18)
    schedule.step()
    assert schedule.value == pytest.approx(0.162)


def test_beta_schedule_at_iteration_is_pure():
    schedule = BetaSchedule(0.2, decay=0.5)
    assert schedule.at_iteration(2) == pytest.approx(0.05)
    assert schedule.value == pytest.approx(0.2)


def test_beta_schedule_respects_minimum():
    schedule = BetaSchedule(0.2, decay=0.1, minimum=0.05)
    schedule.step()
    assert schedule.value == pytest.approx(0.05)


def test_beta_schedule_reset():
    schedule = BetaSchedule(0.3)
    schedule.step()
    schedule.reset()
    assert schedule.value == pytest.approx(0.3)


def test_beta_schedule_validation():
    with pytest.raises(ValueError):
        BetaSchedule(1.5)
    with pytest.raises(ValueError):
        BetaSchedule(0.2, decay=0.0)
    with pytest.raises(ValueError):
        BetaSchedule(0.2, minimum=0.5)


# -- sparsity accounting --------------------------------------------------------------------

def test_sparsity_and_nonzero_count():
    matrix = np.array([[0.0, 1.0], [0.0, 0.0]])
    assert nonzero_count(matrix) == 1
    assert sparsity(matrix) == pytest.approx(0.75)


def test_sparsity_of_empty_matrix_is_zero():
    assert sparsity(np.zeros((0, 3))) == 0.0


def test_layer_sparsity_report_lists_every_layer(rng):
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=rng)
    prune_model_layers(model, 0.5)
    report = layer_sparsity_report(model)
    assert len(report) == 2
    for entry in report:
        assert 0.0 <= entry["sparsity"] <= 1.0
        assert entry["nonzeros"] <= entry["total"]
