"""The serving subsystem: batcher, registry, server, and the determinism
guarantee — responses under concurrent clients and arbitrary batch
coalescing are bit-identical to the direct batch-invariant forward on
each request, across exact / mx / quantized modes, every grouping x
prune engine combination, both execution backends
(``backend="thread"|"process"``), and any worker count.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    KERNELS,
    PRUNE_ENGINES,
    PackedModel,
    PipelineConfig,
    QuantizedPackedModel,
    save_packed,
)
from repro.models import build_model
from repro.serving import (
    DynamicBatcher,
    InferenceServer,
    ModelRegistry,
    SERVING_MODES,
)
from repro.serving.batcher import Batch, PendingRequest

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]

MODEL_KWARGS = {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                "image_size": 8}
MODEL_SPEC = {"name": "lenet5", "kwargs": MODEL_KWARGS}


def sparsified_lenet5(seed: int = 3):
    model = build_model("lenet5", rng=np.random.default_rng(seed),
                        **MODEL_KWARGS)
    mask_rng = np.random.default_rng(seed + 1)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    return model


def build_packed(grouping_engine: str = "fast", prune_engine: str = "fast"
                 ) -> PackedModel:
    config = PipelineConfig(alpha=8, gamma=0.5,
                            grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    return PackedModel.from_model(sparsified_lenet5(), config)


def build_quantized(packed: PackedModel) -> QuantizedPackedModel:
    quantized = QuantizedPackedModel(packed, bits=8)
    quantized.calibrate(np.random.default_rng(7).normal(size=(16, 1, 8, 8)))
    return quantized


@pytest.fixture(scope="module")
def packed() -> PackedModel:
    return build_packed()


@pytest.fixture(scope="module")
def quantized(packed: PackedModel) -> QuantizedPackedModel:
    return build_quantized(packed)


def request_stream(count: int, seed: int, max_request: int = 3) -> list[np.ndarray]:
    """Seeded requests of 1..max_request samples each."""
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(int(rng.integers(1, max_request + 1)), 1, 8, 8))
            for _ in range(count)]


def direct_forward(model, mode: str, batch: np.ndarray,
                   kernel: str = "blocked") -> np.ndarray:
    """The reference each served response must match bit-for-bit."""
    if mode == "quantized":
        return model.forward(batch, track_errors=False, batch_invariant=True,
                             kernel=kernel)
    return model.forward(batch, mode=mode, batch_invariant=True,
                         kernel=kernel)


# -- batch-invariant forward (the property serving builds on) ----------------
@pytest.mark.parametrize("mode", ["exact", "mx"])
def test_batch_invariant_forward_is_coalescing_independent(packed, mode):
    images = np.random.default_rng(0).normal(size=(11, 1, 8, 8))
    full = packed.forward(images, mode=mode, batch_invariant=True)
    for start, stop in [(0, 1), (1, 4), (4, 11), (2, 3)]:
        chunk = packed.forward(images[start:stop], mode=mode,
                               batch_invariant=True)
        assert np.array_equal(full[start:stop], chunk)
    # Numerically equivalent to the default (BLAS) path.
    assert np.allclose(full, packed.forward(images, mode=mode),
                       rtol=1e-9, atol=1e-11)


def test_quantized_batch_invariant_forward_is_coalescing_independent(quantized):
    images = np.random.default_rng(0).normal(size=(11, 1, 8, 8))
    full = quantized.forward(images, track_errors=False, batch_invariant=True)
    for start, stop in [(0, 1), (1, 4), (4, 11)]:
        chunk = quantized.forward(images[start:stop], track_errors=False,
                                  batch_invariant=True)
        assert np.array_equal(full[start:stop], chunk)
    assert np.allclose(full, quantized.forward(images, track_errors=False),
                       rtol=1e-9, atol=1e-11)


def test_batch_invariant_context_restores_module_state(packed):
    images = np.random.default_rng(0).normal(size=(4, 1, 8, 8))
    before = packed.forward(images)
    packed.forward(images, batch_invariant=True)
    assert np.array_equal(packed.forward(images), before)
    model = packed.model
    assert all("forward" not in vars(module) for module in model.modules())


def test_predict_accepts_single_unbatched_sample(packed, quantized):
    images = np.random.default_rng(1).normal(size=(5, 1, 8, 8))
    batched = packed.predict(images)
    single = packed.predict(images[2])
    assert np.ndim(single) == 0
    assert single == batched[2]
    quantized_batched = quantized.predict(images)
    quantized_single = quantized.predict(images[2])
    assert np.ndim(quantized_single) == 0
    assert quantized_single == quantized_batched[2]


# -- dynamic batcher ---------------------------------------------------------
def sample(n: int = 1) -> np.ndarray:
    return np.zeros((n, 1, 2, 2))


def test_batcher_coalesces_up_to_max_batch():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.0)
    requests = [batcher.submit("m", sample()) for _ in range(6)]
    first = batcher.next_batch(timeout=0.1)
    second = batcher.next_batch(timeout=0.1)
    assert [len(first), len(second)] == [4, 2]
    assert first.requests == requests[:4]
    assert second.requests == requests[4:]
    assert first.num_samples == 4
    assert first.stacked().shape == (4, 1, 2, 2)


def test_batcher_counts_samples_not_requests():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.0)
    batcher.submit("m", sample(3))
    batcher.submit("m", sample(3))
    first = batcher.next_batch(timeout=0.1)
    assert len(first) == 1 and first.num_samples == 3  # 3 + 3 > 4: no split
    oversized = batcher.submit("m", sample(9))
    batcher.next_batch(timeout=0.1)
    alone = batcher.next_batch(timeout=0.1)
    assert alone.requests == [oversized]  # oversized dispatches alone


def test_batcher_keeps_per_key_fifo_and_separates_keys():
    batcher = DynamicBatcher(max_batch=8, max_wait=0.0)
    a1 = batcher.submit("a", sample())
    b1 = batcher.submit("b", sample())
    a2 = batcher.submit("a", sample())
    b2 = batcher.submit("b", sample())
    first = batcher.next_batch(timeout=0.1)
    second = batcher.next_batch(timeout=0.1)
    assert first.key == "a" and first.requests == [a1, a2]
    assert second.key == "b" and second.requests == [b1, b2]


def test_batcher_max_wait_dispatches_partial_batches():
    batcher = DynamicBatcher(max_batch=64, max_wait=0.01)
    batcher.submit("m", sample())
    started = time.monotonic()
    batch = batcher.next_batch(timeout=1.0)
    waited = time.monotonic() - started
    assert batch is not None and len(batch) == 1
    assert waited < 0.5  # dispatched by max_wait, not the caller timeout


def test_batcher_never_coalesces_incompatible_sample_shapes():
    batcher = DynamicBatcher(max_batch=8, max_wait=0.0)
    first = batcher.submit("m", sample())
    odd = batcher.submit("m", np.zeros((1, 3, 2, 2)))  # different channels
    last = batcher.submit("m", sample())
    batches = [batcher.next_batch(timeout=0.1) for _ in range(3)]
    assert [batch.requests for batch in batches] == [[first], [odd], [last]]


def test_batcher_timeout_returns_none():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.0)
    assert batcher.next_batch(timeout=0.01) is None


def test_batcher_ready_batch_is_not_blocked_by_a_coalescing_head():
    batcher = DynamicBatcher(max_batch=4, max_wait=5.0)
    head = batcher.submit("slow", sample())     # underfull, huge window
    full = [batcher.submit("fast", sample()) for _ in range(4)]
    started = time.monotonic()
    batch = batcher.next_batch(timeout=1.0)
    assert time.monotonic() - started < 0.5     # no wait behind "slow"
    assert batch.key == "fast" and batch.requests == full
    assert batcher.pending_count() == 1          # head still coalescing
    batcher.close()
    drained = batcher.next_batch(timeout=0.1)
    assert drained.requests == [head]


def test_batcher_caller_timeout_never_truncates_the_coalescing_window():
    batcher = DynamicBatcher(max_batch=16, max_wait=0.15)
    request = batcher.submit("m", sample())
    started = time.monotonic()
    # Short polls (the worker loop's shape) must NOT dispatch the
    # underfull batch early; it becomes ready only after max_wait.
    assert batcher.next_batch(timeout=0.02) is None
    batch = None
    while batch is None and time.monotonic() - started < 2.0:
        batch = batcher.next_batch(timeout=0.02)
    assert batch is not None and batch.requests == [request]
    assert time.monotonic() - started >= 0.15


def test_batcher_close_drains_and_rejects():
    batcher = DynamicBatcher(max_batch=64, max_wait=10.0)
    batcher.submit("m", sample())
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit("m", sample())
    batch = batcher.next_batch(timeout=0.1)  # no coalescing wait once closed
    assert batch is not None and len(batch) == 1
    assert batcher.next_batch(timeout=0.01) is None


def test_batcher_concurrent_workers_never_double_dispatch():
    batcher = DynamicBatcher(max_batch=2, max_wait=0.0)
    requests = [batcher.submit("m", sample()) for _ in range(40)]
    seen: list = []
    lock = threading.Lock()

    def drain():
        while True:
            batch = batcher.next_batch(timeout=0.05)
            if batch is None:
                return
            with lock:
                seen.extend(batch.requests)

    workers = [threading.Thread(target=drain) for _ in range(3)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert len(seen) == len(requests)
    assert {id(request) for request in seen} \
        == {id(request) for request in requests}


def test_batch_resolve_splits_outputs_in_request_order():
    batcher = DynamicBatcher(max_batch=8, max_wait=0.0)
    two = batcher.submit("m", sample(2))
    one = batcher.submit("m", sample(1), unbatched=True)
    batch = batcher.next_batch(timeout=0.1)
    outputs = np.arange(3.0)[:, None]
    batch.resolve(outputs)
    assert np.array_equal(two.result(0.1), outputs[:2])
    assert np.array_equal(one.result(0.1), outputs[2])  # squeezed
    assert two.done() and one.done()


def test_batch_resolve_rejects_wrong_output_count():
    batch = Batch("m", [PendingRequest("m", sample(2), False)])
    with pytest.raises(ValueError, match="outputs"):
        batch.resolve(np.zeros((1, 4)))
    with pytest.raises(ValueError, match="at least one request"):
        Batch("m", [])


def test_batch_fail_propagates_to_results():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.0)
    request = batcher.submit("m", sample())
    batch = batcher.next_batch(timeout=0.1)
    batch.fail(RuntimeError("array on fire"))
    with pytest.raises(RuntimeError, match="array on fire"):
        request.result(0.1)


def test_failed_batch_raises_a_fresh_copy_per_waiter():
    """One shared failure, many client threads: each raise must get its
    own exception instance (concurrent raises of one object would mutate
    its shared traceback/context)."""
    batcher = DynamicBatcher(max_batch=8, max_wait=0.0)
    requests = [batcher.submit("m", sample()) for _ in range(4)]
    shared = ValueError("boom")
    batcher.next_batch(timeout=0.1).fail(shared)
    caught: list[BaseException] = []
    lock = threading.Lock()

    def wait_one(request: PendingRequest) -> None:
        try:
            request.result(0.1)
        except ValueError as error:
            with lock:
                caught.append(error)

    threads = [threading.Thread(target=wait_one, args=(request,))
               for request in requests]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(caught) == 4
    assert len({id(error) for error in caught}) == 4  # distinct copies
    assert all(str(error) == "boom" for error in caught)
    assert all(error.__cause__ is shared for error in caught)
    assert shared.__traceback__ is None  # the shared instance stays clean


def test_request_result_times_out():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.0)
    request = batcher.submit("m", sample())
    with pytest.raises(TimeoutError):
        request.result(0.01)


def test_batcher_validates_knobs():
    with pytest.raises(ValueError, match="max_batch"):
        DynamicBatcher(max_batch=0)
    with pytest.raises(ValueError, match="max_wait"):
        DynamicBatcher(max_wait=-1.0)


# -- model registry ----------------------------------------------------------
def test_registry_lazy_loads_and_serves_hits(tmp_path, packed):
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    registry = ModelRegistry(max_resident=2)
    registry.register("m", path=path)
    assert registry.resident_names() == []
    resident = registry.get("m")
    assert registry.get("m") is resident
    stats = registry.stats()
    assert stats["loads"] == 1 and stats["hits"] == 1
    assert registry.resident_names() == ["m"]
    assert "m" in registry and "other" not in registry


def test_registry_evicts_least_recently_used(tmp_path, packed):
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    registry = ModelRegistry(max_resident=2)
    for name in ["a", "b", "c"]:
        registry.register(name, path=path)
    registry.get("a")
    registry.get("b")
    registry.get("a")          # refresh a: b is now least recent
    registry.get("c")          # evicts b
    assert registry.resident_names() == ["a", "c"]
    assert registry.stats()["evictions"] == 1
    reloaded = registry.get("b")  # transparently reloads (evicting a)
    assert reloaded.plan is not None
    assert registry.stats()["loads"] == 4


def test_registry_pins_directly_added_models(tmp_path, packed):
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    registry = ModelRegistry(max_resident=1)
    registry.add("pinned", packed)
    registry.register("a", path=path)
    registry.register("b", path=path)
    pinned = registry.get("pinned")
    registry.get("a")
    registry.get("b")  # evicts a, never the pinned model
    assert registry.get("pinned") is pinned
    assert "pinned" in registry.resident_names()


def test_registry_rejects_duplicates_unknown_modes_and_missing_paths(
        tmp_path, packed):
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    registry = ModelRegistry()
    registry.register("m", path=path)
    with pytest.raises(ValueError, match="already registered"):
        registry.register("m", path=path)
    with pytest.raises(ValueError, match="unknown serving mode"):
        registry.register("x", path=path, mode="warp")
    with pytest.raises(FileNotFoundError):
        registry.register("y", path=tmp_path / "missing.npz")
    with pytest.raises(KeyError, match="unknown model"):
        registry.get("never-registered")
    assert SERVING_MODES == ("exact", "mx", "quantized")


def test_registry_quantized_mode_requires_quantized_artifact(tmp_path, packed):
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    registry = ModelRegistry()
    registry.register("m", path=path, mode="quantized")
    with pytest.raises(ValueError, match="float PackedModel"):
        registry.get("m")


def test_resident_batch_plan_tracks_spatial_sizes():
    """Cycle accounting distinguishes batches of different map sizes."""
    model = build_model("resnet20", in_channels=3, num_classes=10, scale=0.25,
                        rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.5
    packed = PackedModel.from_model(model, PipelineConfig(alpha=4, gamma=0.5))
    registry = ModelRegistry()
    registry.add("rn", packed)
    resident = registry.get("rn")
    _, small_observed = resident.forward_traced(rng.normal(size=(2, 3, 8, 8)))
    small = resident.batch_plan(2, small_observed)
    _, large_observed = resident.forward_traced(rng.normal(size=(2, 3, 16, 16)))
    large = resident.batch_plan(2, large_observed)
    assert large.total_cycles > small.total_cycles
    with pytest.raises(ValueError, match="observed spatial map"):
        resident.batch_plan(2)


def test_registry_rejects_matrix_only_artifacts_at_load(tmp_path):
    from repro.combining import PackingPipeline
    from repro.experiments.workloads import sparse_network

    layers = sparse_network("lenet5", density=0.13, seed=0)
    with PackingPipeline(PipelineConfig()) as pipeline:
        model = PackedModel.from_pipeline_result(pipeline.run(layers))
    path = save_packed(model, tmp_path / "matrices.npz")
    registry = ModelRegistry()
    registry.register("m", path=path)
    with pytest.raises(ValueError, match="no nn model"):
        registry.get("m")


# -- per-entry load locks ----------------------------------------------------
def test_registry_slow_load_does_not_block_other_models(tmp_path, packed,
                                                        monkeypatch):
    """A stuck load of one model must not serialize loads of other models
    behind it (the old registry held one RLock across every load)."""
    import repro.serving.registry as registry_module

    path_a = save_packed(packed, tmp_path / "a.npz", model_spec=MODEL_SPEC)
    path_b = save_packed(packed, tmp_path / "b.npz", model_spec=MODEL_SPEC)
    real_load = registry_module.load_plan
    entered_a = threading.Event()
    release_a = threading.Event()

    def gated_load(path, **kwargs):
        if Path(path).name == "a.npz":
            entered_a.set()
            assert release_a.wait(10.0), "test deadlocked"
        return real_load(path, **kwargs)

    monkeypatch.setattr(registry_module, "load_plan", gated_load)
    registry = ModelRegistry(max_resident=2)
    registry.register("a", path=path_a)
    registry.register("b", path=path_b)
    results: dict = {}

    def get(name: str) -> None:
        results[name] = registry.get(name)

    thread_a = threading.Thread(target=get, args=("a",))
    thread_a.start()
    assert entered_a.wait(10.0)
    thread_b = threading.Thread(target=get, args=("b",))
    thread_b.start()
    thread_b.join(10.0)  # b loads to completion while a is still stuck
    assert not thread_b.is_alive() and results["b"].plan is not None
    assert "a" not in results
    release_a.set()
    thread_a.join(10.0)
    assert results["a"].plan is not None
    assert registry.stats()["loads"] == 2


def test_registry_concurrent_gets_of_one_name_load_once(tmp_path, packed,
                                                        monkeypatch):
    import repro.serving.registry as registry_module

    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC)
    real_load = registry_module.load_plan
    calls: list = []
    lock = threading.Lock()

    def counting_load(path, **kwargs):
        with lock:
            calls.append(path)
        time.sleep(0.02)  # widen the race window
        return real_load(path, **kwargs)

    monkeypatch.setattr(registry_module, "load_plan", counting_load)
    registry = ModelRegistry(max_resident=2)
    registry.register("m", path=path)
    residents: list = []

    def get() -> None:
        resident = registry.get("m")
        with lock:
            residents.append(resident)

    threads = [threading.Thread(target=get) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(calls) == 1
    assert len({id(resident) for resident in residents}) == 1
    stats = registry.stats()
    assert stats["loads"] == 1 and stats["hits"] == 7


# -- inference server --------------------------------------------------------
def serve_and_check(models: dict[str, tuple], max_batch: int, max_wait: float,
                    workers: int, clients: int, requests_per_client: int,
                    max_resident: int = 4) -> InferenceServer:
    """Serve seeded concurrent traffic; assert every response bit-identical.

    ``models`` maps name -> (model_object, mode, direct_model) where
    ``direct_model`` computes the reference response.
    """
    registry = ModelRegistry(max_resident=max_resident)
    for name, (model, mode, _) in models.items():
        registry.add(name, model, mode=mode)
    # Expected responses are precomputed up front.  (With plan execution
    # the server never touches the source module graphs, so the legacy
    # reference forwards *could* now run concurrently with the workers —
    # precomputing just keeps the client threads trivial.)
    names = sorted(models)
    plans: dict[int, list[tuple[str, np.ndarray, np.ndarray]]] = {}
    for client_index in range(clients):
        stream = request_stream(requests_per_client, seed=100 + client_index)
        plan = []
        for index, batch in enumerate(stream):
            name = names[(client_index + index) % len(names)]
            _, mode, direct_model = models[name]
            plan.append((name, batch, direct_forward(direct_model, mode, batch)))
        plans[client_index] = plan
    failures: list = []
    with InferenceServer(registry, max_batch=max_batch, max_wait=max_wait,
                         workers=workers) as server:

        def client(client_index: int) -> None:
            try:
                pending = [(expected, server.submit(name, batch))
                           for name, batch, expected in plans[client_index]]
                for expected, request in pending:
                    response = request.result(timeout=30.0)
                    assert np.array_equal(response, expected), \
                        "served response diverged from direct forward"
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if failures:
        raise failures[0]
    return server


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_server_responses_bit_identical_across_backends(grouping_engine,
                                                        prune_engine):
    """The determinism guarantee, per engine combo, all three backends."""
    packed_model = build_packed(grouping_engine, prune_engine)
    quantized_model = build_quantized(packed_model)
    models = {
        "exact": (packed_model, "exact", packed_model),
        "mx": (packed_model, "mx", packed_model),
        "int8": (quantized_model, "quantized", quantized_model),
    }
    server = serve_and_check(models, max_batch=8, max_wait=0.001, workers=2,
                             clients=3, requests_per_client=6)
    totals = server.stats()["totals"]
    assert totals["requests"] == 18
    assert totals["failures"] == 0
    assert totals["cycles"] > 0


BACKEND_CELLS = [
    ("thread", workers, kernel)
    for workers in (1, 2, 4) for kernel in KERNELS] + [
    pytest.param("process", workers, kernel, marks=pytest.mark.slow)
    for workers in (1, 2, 4) for kernel in KERNELS]


@pytest.mark.parametrize("backend,workers,kernel", BACKEND_CELLS)
def test_server_bit_identical_across_execution_backends(tmp_path, packed,
                                                        quantized, backend,
                                                        workers, kernel):
    """The serving invariant, per cell of backend x workers x kernel:
    responses are bit-identical across backend="thread"|"process", worker
    counts, batch-invariant kernels, and arbitrary coalescing, for every
    serving mode."""
    path_f = save_packed(packed, tmp_path / "f.npz", model_spec=MODEL_SPEC,
                         compress=False)
    path_q = save_packed(quantized, tmp_path / "q.npz", model_spec=MODEL_SPEC,
                         compress=False)
    registry = ModelRegistry(max_resident=3)
    registry.register("exact", path=path_f, mode="exact")
    registry.register("mx", path=path_f, mode="mx")
    registry.register("int8", path=path_q, mode="quantized")
    stream = request_stream(8, seed=21)
    expected = {name: [direct_forward(model, mode, batch, kernel)
                       for batch in stream]
                for name, (model, mode)
                in {"exact": (packed, "exact"), "mx": (packed, "mx"),
                    "int8": (quantized, "quantized")}.items()}
    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         workers=workers, backend=backend,
                         kernel=kernel) as server:
        pending = [(name, index, server.submit(name, batch))
                   for index, batch in enumerate(stream)
                   for name in ("exact", "mx", "int8")]
        for name, index, request in pending:
            assert np.array_equal(request.result(60.0),
                                  expected[name][index]), (
                f"response diverged (backend={backend}, workers={workers}, "
                f"kernel={kernel}, model={name})")
        stats = server.stats()
    assert stats["totals"]["failures"] == 0
    assert stats["totals"]["cycles"] > 0
    assert stats["backend"] == backend and stats["kernel"] == kernel


def test_server_rejects_unknown_backend(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with pytest.raises(ValueError, match="unknown serving backend"):
        InferenceServer(registry, backend="fiber")


def test_server_rejects_unknown_kernel(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        InferenceServer(registry, kernel="warp")


@pytest.mark.slow
def test_process_backend_relays_live_model_rejection(packed):
    """add()-registered models have no artifact to ship to a worker
    process; the failure must come back on the request, not kill a
    worker."""
    registry = ModelRegistry()
    registry.add("live", packed)
    with InferenceServer(registry, backend="process", workers=1) as server:
        with pytest.raises(ValueError, match="artifact-backed"):
            server.submit("live", sample(1)[0]).result(30.0)
    assert server.stats()["totals"]["failures"] == 1


def test_server_coalescing_settings_do_not_change_responses(packed):
    """Same traffic under wildly different batching knobs: same bits."""
    stream = request_stream(10, seed=5)
    outputs = []
    for max_batch, max_wait, workers in [(1, 0.0, 1), (4, 0.002, 1),
                                         (32, 0.01, 2)]:
        registry = ModelRegistry()
        registry.add("m", packed)
        with InferenceServer(registry, max_batch=max_batch,
                             max_wait=max_wait, workers=workers) as server:
            pending = [server.submit("m", batch) for batch in stream]
            outputs.append([request.result(30.0) for request in pending])
    for other in outputs[1:]:
        assert all(np.array_equal(first, second)
                   for first, second in zip(outputs[0], other))


def test_server_single_sample_requests_squeeze(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    sample_image = np.random.default_rng(2).normal(size=(1, 8, 8))
    with InferenceServer(registry, max_batch=4, max_wait=0.0) as server:
        response = server.infer("m", sample_image, timeout=10.0)
    expected = direct_forward(packed, "exact", sample_image[None])[0]
    assert response.shape == (10,)
    assert np.array_equal(response, expected)


def test_server_graceful_shutdown_answers_everything(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    server = InferenceServer(registry, max_batch=4, max_wait=5.0).start()
    stream = request_stream(7, seed=9)
    pending = [server.submit("m", batch) for batch in stream]
    server.stop()  # drains despite the huge coalescing window
    assert all(request.done() for request in pending)
    for batch, request in zip(stream, pending):
        assert np.array_equal(request.result(0.1),
                              direct_forward(packed, "exact", batch))
    assert not server.running
    with pytest.raises(RuntimeError, match="stopped"):
        server.start()


def test_server_validates_requests(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    server = InferenceServer(registry)
    with pytest.raises(RuntimeError, match="not running"):
        server.submit("m", sample())
    with server:
        with pytest.raises(KeyError, match="unknown model"):
            server.submit("ghost", sample())
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            server.submit("m", np.zeros((2, 2)))


def test_server_relays_forward_failures(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with InferenceServer(registry, max_batch=2, max_wait=0.0) as server:
        bad = server.submit("m", np.zeros((1, 3, 8, 8)))  # wrong channels
        good = server.submit("m", np.zeros((1, 1, 8, 8)))
        with pytest.raises(ValueError):
            bad.result(10.0)
        assert good.result(10.0).shape == (1, 10)
    assert server.stats()["totals"]["failures"] == 1


def test_server_stats_account_requests_batches_and_latency(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    stream = request_stream(8, seed=3, max_request=1)
    with InferenceServer(registry, max_batch=4, max_wait=0.05) as server:
        pending = [server.submit("m", batch) for batch in stream]
        for request in pending:
            request.result(30.0)
        stats = server.stats()
    totals = stats["totals"]
    assert totals["requests"] == 8 and totals["samples"] == 8
    assert 2 <= totals["batches"] <= 8
    assert totals["mean_batch_size"] == totals["samples"] / totals["batches"]
    model_stats = stats["per_model"]["m"]
    assert model_stats["queued_seconds"]["mean"] >= 0.0
    assert model_stats["service_seconds"]["max"] > 0.0
    assert model_stats["cycles"] > 0 and model_stats["tiles"] > 0
    assert all(request.queued_seconds is not None
               and request.service_seconds is not None
               for request in pending)


def test_server_stats_expose_plan_cache_hit_rates(packed):
    """Thread backend: every batch resolves one accounting plan, and
    repeated (batch size, spatial shape) keys hit the resident model's
    plan cache — totals must add up exactly."""
    registry = ModelRegistry()
    registry.add("m", packed)
    stream = request_stream(10, seed=11, max_request=1)  # one shape only
    with InferenceServer(registry, max_batch=1, max_wait=0.0) as server:
        for batch in stream:
            server.submit("m", batch).result(30.0)
        stats = server.stats()
    totals = stats["totals"]
    plan_cache = totals["plan_cache"]
    assert plan_cache["hits"] + plan_cache["misses"] == totals["batches"]
    # One sample per batch, one spatial shape: exactly one plan compile.
    assert plan_cache["misses"] == 1
    assert plan_cache["hits"] == totals["batches"] - 1
    per_model = stats["per_model"]["m"]["plan_cache"]
    assert per_model == plan_cache


@pytest.mark.slow
def test_process_backend_plan_caches_pay_per_worker_misses(tmp_path, packed):
    """Process backend: each worker process owns a private plan cache, so
    misses duplicate across workers — the stats make that visible (the
    totals still add up to the batch count)."""
    path = save_packed(packed, tmp_path / "m.npz", model_spec=MODEL_SPEC,
                       compress=False)
    registry = ModelRegistry()
    registry.register("m", path=path)
    workers = 2
    stream = request_stream(12, seed=13, max_request=1)
    with InferenceServer(registry, max_batch=1, max_wait=0.0,
                         workers=workers, backend="process") as server:
        pending = [server.submit("m", batch) for batch in stream]
        for request in pending:
            request.result(60.0)
        stats = server.stats()
    totals = stats["totals"]
    plan_cache = totals["plan_cache"]
    assert plan_cache["hits"] + plan_cache["misses"] == totals["batches"]
    # One shape served: between 1 (one worker drained everything) and
    # one miss per worker's private cache.
    assert 1 <= plan_cache["misses"] <= workers


@pytest.mark.slow
def test_server_sustained_load_with_eviction_thrash(tmp_path):
    """Sustained mixed-model traffic against a thrashing LRU registry.

    Two artifact-backed models share a max_resident=1 registry, so nearly
    every alternation reloads from disk mid-traffic; responses must still
    be bit-identical throughout, and the drain must answer everything.
    """
    packed_a = build_packed("fast", "fast")
    quantized_b = build_quantized(packed_a)
    path_a = save_packed(packed_a, tmp_path / "a.npz", model_spec=MODEL_SPEC)
    path_b = save_packed(quantized_b, tmp_path / "b.npz",
                         model_spec=MODEL_SPEC)
    registry = ModelRegistry(max_resident=1)
    registry.register("a", path=path_a, mode="exact")
    registry.register("b", path=path_b, mode="quantized")
    # References precomputed up front: the local packed_a / quantized_b
    # share one module graph, and the server loads its own instances from
    # the artifacts, so the direct forwards must not race the workers.
    plans: dict[int, list[tuple[str, np.ndarray, np.ndarray]]] = {}
    for index in range(4):
        plan = []
        for position, batch in enumerate(request_stream(25, seed=500 + index)):
            name = "a" if (index + position) % 2 == 0 else "b"
            model = packed_a if name == "a" else quantized_b
            mode = "exact" if name == "a" else "quantized"
            plan.append((name, batch, direct_forward(model, mode, batch)))
        plans[index] = plan
    failures: list = []
    with InferenceServer(registry, max_batch=8, max_wait=0.001,
                         workers=2) as server:

        def client(index: int) -> None:
            try:
                for name, batch, expected in plans[index]:
                    response = server.submit(name, batch).result(60.0)
                    assert np.array_equal(response, expected)
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
    if failures:
        raise failures[0]
    assert stats["totals"]["requests"] == 100
    assert stats["totals"]["failures"] == 0
    assert stats["registry"]["evictions"] > 0
