"""Tests for gradient-norm clipping in the SGD optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD
from repro.nn.parameter import Parameter


def test_global_grad_norm_is_l2_over_all_parameters():
    a = Parameter(np.zeros(2))
    b = Parameter(np.zeros(2))
    a.grad[:] = [3.0, 0.0]
    b.grad[:] = [0.0, 4.0]
    optimizer = SGD([a, b], lr=0.1)
    assert optimizer.global_grad_norm() == pytest.approx(5.0)


def test_clipping_rescales_large_gradients():
    param = Parameter(np.zeros(2))
    param.grad[:] = [30.0, 40.0]  # norm 50
    optimizer = SGD([param], lr=1.0, momentum=0.0, clip_norm=5.0)
    optimizer.step()
    # After clipping the gradient is (3, 4): step moves by exactly that.
    np.testing.assert_allclose(param.data, [-3.0, -4.0])


def test_small_gradients_are_not_rescaled():
    param = Parameter(np.zeros(2))
    param.grad[:] = [0.3, 0.4]
    optimizer = SGD([param], lr=1.0, momentum=0.0, clip_norm=5.0)
    optimizer.step()
    np.testing.assert_allclose(param.data, [-0.3, -0.4])


def test_clipping_disabled_by_default():
    param = Parameter(np.zeros(1))
    param.grad[:] = [100.0]
    optimizer = SGD([param], lr=1.0, momentum=0.0)
    optimizer.step()
    np.testing.assert_allclose(param.data, [-100.0])


def test_invalid_clip_norm_rejected():
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(1))], lr=0.1, clip_norm=0.0)


def test_clipping_keeps_divergent_training_bounded(rng):
    """With an absurdly large learning rate, clipping bounds the update size."""
    param = Parameter(rng.normal(size=(4, 4)))
    optimizer = SGD([param], lr=10.0, momentum=0.0, clip_norm=1.0)
    for _ in range(5):
        param.grad[:] = rng.normal(size=(4, 4)) * 1e6
        before = param.data.copy()
        optimizer.step()
        assert np.linalg.norm(param.data - before) <= 10.0 + 1e-9
