"""Tests for density, conflict, and packing-efficiency metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining.metrics import (
    column_density,
    count_conflicts,
    density,
    meets_limited_conflict,
    packing_efficiency,
    utilization_efficiency,
)


def test_density_counts_nonzero_fraction():
    matrix = np.array([[1.0, 0.0], [0.0, 2.0]])
    assert density(matrix) == pytest.approx(0.5)


def test_density_of_empty_matrix_is_zero():
    assert density(np.zeros((0, 4))) == 0.0


def test_column_density_measures_occupied_rows():
    matrix = np.array([
        [1.0, 0.0, 0.0],
        [0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0],
        [3.0, 4.0, 0.0],
    ])
    # Columns 0 and 1 together occupy rows 0, 1, 3 -> 3 of 4 rows.
    assert column_density(matrix, [0, 1]) == pytest.approx(0.75)
    assert column_density(matrix, [2]) == 0.0
    assert column_density(matrix, []) == 0.0


def test_count_conflicts_counts_prunable_weights():
    matrix = np.array([
        [1.0, 2.0, 0.0],
        [0.0, 3.0, 4.0],
        [5.0, 0.0, 0.0],
    ])
    # Rows 0 and 1 each have two nonzeros among all three columns -> 2 conflicts.
    assert count_conflicts(matrix, [0, 1, 2]) == 2
    assert count_conflicts(matrix, [0]) == 0
    assert count_conflicts(matrix, []) == 0


def test_meets_limited_conflict_threshold():
    matrix = np.array([[1.0, 1.0], [1.0, 0.0]])
    # One conflict over two rows -> 0.5 conflicts per row.
    assert meets_limited_conflict(matrix, [0, 1], gamma=0.5)
    assert not meets_limited_conflict(matrix, [0, 1], gamma=0.4)
    with pytest.raises(ValueError):
        meets_limited_conflict(matrix, [0, 1], gamma=-1.0)


def test_packing_and_utilization_efficiency_are_identical(rng):
    matrix = rng.normal(size=(6, 4)) * (rng.random((6, 4)) < 0.5)
    assert packing_efficiency(matrix) == utilization_efficiency(matrix)


def test_metrics_reject_non_2d_input():
    with pytest.raises(ValueError):
        column_density(np.zeros(4), [0])
    with pytest.raises(ValueError):
        count_conflicts(np.zeros(4), [0])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500), cols=st.integers(1, 6))
def test_property_conflicts_bounded_by_nonzeros(seed, cols):
    """A group can never have more conflicts than nonzero weights."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(8, 6)) * (rng.random((8, 6)) < 0.4)
    columns = list(range(cols))
    conflicts = count_conflicts(matrix, columns)
    nonzeros = int(np.count_nonzero(matrix[:, columns]))
    assert 0 <= conflicts <= nonzeros
    if cols == 1:
        assert conflicts == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_column_density_monotone_in_columns(seed):
    """Adding a column to a group never decreases the occupied-row count."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(10, 5)) * (rng.random((10, 5)) < 0.3)
    base = column_density(matrix, [0, 1])
    extended = column_density(matrix, [0, 1, 2])
    assert extended >= base - 1e-12
