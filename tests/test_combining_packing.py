"""Tests for packed filter matrices (the MX-cell data structure)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import (
    ColumnGrouping,
    PackedFilterMatrix,
    column_combine_prune,
    group_columns,
    pack_filter_matrix,
)


def sparse(rng, rows=24, cols=40, density=0.2):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def test_packed_shape_is_rows_by_groups(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    assert packed.weights.shape == (24, grouping.num_groups)
    assert packed.channel_index.shape == packed.weights.shape


def test_channel_index_points_at_source_column(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    rows, groups = np.nonzero(packed.channel_index >= 0)
    for row, group in zip(rows, groups):
        column = packed.channel_index[row, group]
        assert column in grouping.groups[group]
        assert packed.weights[row, group] == pruned[row, column]


def test_empty_cells_have_sentinel_and_zero_weight(rng):
    matrix = sparse(rng, density=0.1)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    empty = packed.channel_index < 0
    assert np.all(packed.weights[empty] == 0.0)


def test_to_sparse_reconstructs_pruned_matrix(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    np.testing.assert_allclose(packed.to_sparse(), pruned)


def test_multiply_matches_pruned_matmul(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    data = rng.normal(size=(matrix.shape[1], 17))
    np.testing.assert_allclose(packed.multiply(data), pruned @ data)


def test_multiply_validates_data_shape(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    with pytest.raises(ValueError):
        packed.multiply(rng.normal(size=(matrix.shape[1] + 1, 3)))


def test_packing_efficiency_increases_over_original_density(rng):
    matrix = sparse(rng, rows=48, cols=80, density=0.12)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    original_density = np.count_nonzero(matrix) / matrix.size
    assert packed.packing_efficiency() > 2 * original_density


def test_multiplexing_degree_is_largest_group(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=6, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    assert packed.multiplexing_degree() == max(grouping.group_sizes())
    assert packed.multiplexing_degree() <= 6


def test_pack_without_pruning_requires_conflict_free_grouping():
    matrix = np.array([[1.0, 2.0]])
    grouping = ColumnGrouping([[0, 1]], num_columns=2, num_rows=1, alpha=8, gamma=1.0)
    with pytest.raises(ValueError):
        pack_filter_matrix(matrix, grouping, prune_conflicts=False)


def test_pack_without_pruning_on_conflict_free_grouping_keeps_all_weights(rng):
    matrix = sparse(rng, density=0.1)
    grouping = group_columns(matrix, alpha=8, gamma=0.0)
    packed = pack_filter_matrix(matrix, grouping, prune_conflicts=False)
    assert np.count_nonzero(packed.weights) == np.count_nonzero(matrix)


def test_pack_validates_grouping_shape(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    with pytest.raises(ValueError):
        pack_filter_matrix(matrix[:, :-1], grouping)


# -- channel_index validation -------------------------------------------------------------

def valid_packed(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    return pack_filter_matrix(matrix, grouping)


def test_channel_index_out_of_range_rejected(rng):
    packed = valid_packed(rng)
    channel_index = packed.channel_index.copy()
    row, group = np.argwhere(channel_index >= 0)[0]
    channel_index[row, group] = packed.original_shape[1]
    with pytest.raises(ValueError, match="out-of-range"):
        PackedFilterMatrix(packed.weights, channel_index, packed.grouping,
                           packed.original_shape)


def test_channel_index_below_sentinel_rejected(rng):
    packed = valid_packed(rng)
    channel_index = packed.channel_index.copy()
    channel_index[0, 0] = -2
    with pytest.raises(ValueError, match="out-of-range"):
        PackedFilterMatrix(packed.weights, channel_index, packed.grouping,
                           packed.original_shape)


def test_channel_routed_to_wrong_group_rejected(rng):
    packed = valid_packed(rng)
    channel_index = packed.channel_index.copy()
    rows, groups = np.nonzero(channel_index >= 0)
    # Move one cell's channel into a different group than it belongs to.
    victim = next(i for i in range(rows.size)
                  if groups[i] != packed.grouping.num_groups - 1)
    wrong_group_column = packed.grouping.groups[-1][0]
    channel_index[rows[victim], groups[victim]] = wrong_group_column
    with pytest.raises(ValueError, match="belongs to group"):
        PackedFilterMatrix(packed.weights, channel_index, packed.grouping,
                           packed.original_shape)


def test_packed_height_mismatch_rejected(rng):
    packed = valid_packed(rng)
    with pytest.raises(ValueError):
        PackedFilterMatrix(packed.weights[:-1], packed.channel_index[:-1],
                           packed.grouping, packed.original_shape)


def test_grouping_column_count_mismatch_rejected(rng):
    packed = valid_packed(rng)
    wrong_shape = (packed.original_shape[0], packed.original_shape[1] + 1)
    with pytest.raises(ValueError):
        PackedFilterMatrix(packed.weights, packed.channel_index,
                           packed.grouping, wrong_shape)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000),
       rows=st.integers(2, 24),
       cols=st.integers(1, 24),
       density=st.floats(0.05, 0.8),
       alpha=st.integers(1, 8),
       gamma=st.floats(0.0, 1.0))
def test_property_packed_multiply_equals_pruned_matmul(seed, rows, cols, density,
                                                       alpha, gamma):
    """Functional-equivalence invariant: for any matrix and any grouping the
    algorithm produces, MX-cell execution of the packed matrix computes
    exactly the matrix product of the column-combine-pruned matrix."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    data = rng.normal(size=(cols, 5))
    np.testing.assert_allclose(packed.multiply(data), pruned @ data, atol=1e-9)
    # Nonzero count is preserved by packing (pruning happened before packing).
    assert np.count_nonzero(packed.weights) == np.count_nonzero(pruned)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_packing_never_loses_the_largest_weight_per_row(seed):
    """The largest-magnitude weight of every row always survives packing."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(10, 15)) * (rng.random((10, 15)) < 0.3)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    reconstructed = packed.to_sparse()
    for row in range(matrix.shape[0]):
        if np.any(matrix[row] != 0):
            largest = np.max(np.abs(matrix[row]))
            assert np.max(np.abs(reconstructed[row])) == pytest.approx(largest)
