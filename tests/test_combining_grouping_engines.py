"""Differential tests: the fast grouping engine against the reference loop.

The fast bitset engine promises *bit-identical* groupings — same group
contents, same group ordering, same tie-breaks — for every matrix, policy,
and (α, γ) setting.  These tests sweep seeded random matrices across the
parameter grid and assert exact equality, plus the packing round-trip
through ``to_sparse``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import (
    GROUPING_ENGINES,
    column_combine_prune,
    group_columns,
    pack_filter_matrix,
)
from repro.combining.bitset import pack_columns, popcount, words_for_rows

ALPHAS = (1, 2, 8, 16)
GAMMAS = (0.0, 0.5, 2.0)
POLICIES = ("dense-first", "first-fit", "random")


def seeded_matrix(seed: int, rows: int = 28, cols: int = 36,
                  density: float = 0.2) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def assert_engines_identical(matrix: np.ndarray, alpha: int, gamma: float,
                             policy: str = "dense-first") -> None:
    fast = group_columns(matrix, alpha=alpha, gamma=gamma, policy=policy,
                         rng=np.random.default_rng(99), engine="fast")
    reference = group_columns(matrix, alpha=alpha, gamma=gamma, policy=policy,
                              rng=np.random.default_rng(99), engine="reference")
    assert fast.groups == reference.groups


# -- bitset primitives --------------------------------------------------------------------

def test_words_for_rows():
    assert words_for_rows(0) == 1
    assert words_for_rows(1) == 1
    assert words_for_rows(64) == 1
    assert words_for_rows(65) == 2
    with pytest.raises(ValueError):
        words_for_rows(-1)


def test_pack_columns_popcount_matches_count_nonzero(rng):
    mask = rng.random((70, 23)) < 0.3
    bits = pack_columns(mask)
    assert bits.shape == (23, 2)
    np.testing.assert_array_equal(popcount(bits), np.count_nonzero(mask, axis=0))


def test_pack_columns_and_or_match_set_algebra(rng):
    mask = rng.random((130, 8)) < 0.4
    bits = pack_columns(mask)
    for first in range(8):
        for second in range(8):
            overlap = int(np.count_nonzero(mask[:, first] & mask[:, second]))
            union = int(np.count_nonzero(mask[:, first] | mask[:, second]))
            assert int(popcount(bits[first] & bits[second])) == overlap
            assert int(popcount(bits[first] | bits[second])) == union


def test_pack_columns_validates_dimensions():
    with pytest.raises(ValueError):
        pack_columns(np.zeros(5, dtype=bool))


# -- engine selection ---------------------------------------------------------------------

def test_unknown_engine_raises():
    with pytest.raises(ValueError):
        group_columns(seeded_matrix(0), engine="turbo")


def test_engine_names_exported():
    assert set(GROUPING_ENGINES) == {"fast", "reference"}


# -- differential sweep -------------------------------------------------------------------

@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("gamma", GAMMAS)
def test_engines_identical_across_alpha_gamma(alpha, gamma):
    for seed, density in ((0, 0.1), (1, 0.25), (2, 0.5)):
        assert_engines_identical(seeded_matrix(seed, density=density), alpha, gamma)


@pytest.mark.parametrize("policy", POLICIES)
def test_engines_identical_across_policies(policy):
    for seed in range(3):
        assert_engines_identical(seeded_matrix(seed), alpha=8, gamma=0.5,
                                 policy=policy)


def test_engines_identical_with_all_zero_columns():
    matrix = seeded_matrix(3, rows=20, cols=30, density=0.3)
    matrix[:, [0, 7, 29]] = 0.0
    for alpha in ALPHAS:
        for gamma in GAMMAS:
            assert_engines_identical(matrix, alpha, gamma)


def test_engines_identical_on_all_zero_matrix():
    assert_engines_identical(np.zeros((12, 9)), alpha=4, gamma=0.5)


def test_engines_identical_on_empty_matrix():
    for engine in GROUPING_ENGINES:
        grouping = group_columns(np.zeros((4, 0)), alpha=8, gamma=0.5, engine=engine)
        assert grouping.num_groups == 0


def test_engines_identical_on_zero_row_matrix():
    assert_engines_identical(np.zeros((0, 11)), alpha=4, gamma=0.5)


def test_engines_identical_on_single_column():
    assert_engines_identical(seeded_matrix(4, cols=1), alpha=8, gamma=0.5)


def test_engines_identical_on_wide_matrix_many_rows():
    # More than 64 rows exercises multi-word bitsets.
    assert_engines_identical(seeded_matrix(5, rows=150, cols=80, density=0.15),
                             alpha=8, gamma=0.5)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000),
       rows=st.integers(1, 70),
       cols=st.integers(1, 40),
       density=st.floats(0.0, 1.0),
       alpha=st.sampled_from(ALPHAS),
       gamma=st.sampled_from(GAMMAS),
       policy=st.sampled_from(POLICIES))
def test_property_engines_bit_identical(seed, rows, cols, density, alpha, gamma,
                                        policy):
    matrix = seeded_matrix(seed, rows=rows, cols=cols, density=density)
    assert_engines_identical(matrix, alpha, gamma, policy)


# -- packing round-trip -------------------------------------------------------------------

@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("gamma", GAMMAS)
def test_fast_grouping_packs_and_round_trips(alpha, gamma):
    """pack_filter_matrix on a fast-engine grouping reconstructs the pruned matrix."""
    matrix = seeded_matrix(6, rows=30, cols=44, density=0.2)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma, engine="fast")
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    np.testing.assert_allclose(packed.to_sparse(), pruned)
    data = np.random.default_rng(6).normal(size=(matrix.shape[1], 7))
    np.testing.assert_allclose(packed.multiply(data), pruned @ data, atol=1e-9)
