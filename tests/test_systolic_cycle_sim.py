"""Tests for the word-level cycle-accurate dataflow simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic import simulate_weight_stationary


def test_output_matches_matrix_product(rng):
    matrix = rng.normal(size=(5, 6))
    data = rng.normal(size=(6, 9))
    result = simulate_weight_stationary(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data)


def test_last_exit_slot_matches_analytic_formula(rng):
    rows, cols, words = 4, 7, 10
    matrix = rng.normal(size=(rows, cols))
    data = rng.normal(size=(cols, words))
    result = simulate_weight_stationary(matrix, data)
    assert result.last_exit_slot == (words - 1) + (rows - 1) + (cols - 1)
    assert result.total_slots == words + rows + cols - 2


def test_exit_slots_are_skewed_by_row_and_word(rng):
    matrix = rng.normal(size=(3, 4))
    data = rng.normal(size=(4, 5))
    result = simulate_weight_stationary(matrix, data)
    # Result (i, l) exits at slot l + i + cols - 1.
    for i in range(3):
        for l in range(5):
            assert result.exit_slots[i, l] == l + i + 3


def test_single_cell_array(rng):
    matrix = np.array([[2.5]])
    data = np.array([[1.0, 2.0, 3.0]])
    result = simulate_weight_stationary(matrix, data)
    np.testing.assert_allclose(result.output, [[2.5, 5.0, 7.5]])
    assert result.last_exit_slot == 2


def test_empty_data_returns_empty_output(rng):
    result = simulate_weight_stationary(np.ones((3, 3)), np.zeros((3, 0)))
    assert result.output.shape == (3, 0)
    assert result.total_slots == 0


def test_dimension_validation(rng):
    with pytest.raises(ValueError):
        simulate_weight_stationary(np.ones((2, 3)), np.ones((4, 5)))
    with pytest.raises(ValueError):
        simulate_weight_stationary(np.ones(3), np.ones((3, 2)))


def test_sparse_matrix_dataflow_is_exact(rng):
    matrix = rng.normal(size=(6, 8)) * (rng.random((6, 8)) < 0.3)
    data = rng.normal(size=(8, 4))
    result = simulate_weight_stationary(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data)


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(1, 6), cols=st.integers(1, 6), words=st.integers(1, 8),
       seed=st.integers(0, 100))
def test_property_simulation_equals_matmul_and_latency_formula(rows, cols, words, seed):
    """The register-level dataflow computes the exact product and the last
    result always leaves at slot (words + rows + cols - 3)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols))
    data = rng.normal(size=(cols, words))
    result = simulate_weight_stationary(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data, atol=1e-9)
    assert result.last_exit_slot == words + rows + cols - 3
