"""Tests for 8-bit linear fixed-point quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    CALIBRATIONS,
    LinearQuantizer,
    dequantize_tensor,
    quantization_error,
    quantize_tensor,
)


def test_quantizer_range_for_8_bits():
    quantizer = LinearQuantizer(bits=8, scale=1.0)
    assert quantizer.qmax == 127
    assert quantizer.qmin == -128


def test_fit_maps_largest_magnitude_to_qmax(rng):
    tensor = rng.normal(size=(10, 10))
    quantizer = LinearQuantizer.fit(tensor, bits=8)
    quantized = quantizer.quantize(tensor)
    assert np.abs(quantized).max() == 127


def test_quantize_clips_to_representable_range():
    quantizer = LinearQuantizer(bits=8, scale=1.0)
    quantized = quantizer.quantize(np.array([1000.0, -1000.0]))
    np.testing.assert_array_equal(quantized, [127, -128])


def test_zero_maps_to_zero(rng):
    tensor = rng.normal(size=(5, 5))
    tensor[0, 0] = 0.0
    quantizer = LinearQuantizer.fit(tensor)
    assert quantizer.quantize(tensor)[0, 0] == 0


def test_roundtrip_error_is_bounded_by_half_scale(rng):
    tensor = rng.normal(size=(100,))
    quantizer = LinearQuantizer.fit(tensor)
    error = np.abs(quantizer.roundtrip(tensor) - tensor)
    assert error.max() <= quantizer.scale / 2 + 1e-12


def test_fit_on_all_zero_tensor_uses_unit_scale():
    quantizer = LinearQuantizer.fit(np.zeros((3, 3)))
    assert quantizer.scale == 1.0
    assert np.all(quantizer.quantize(np.zeros((3, 3))) == 0)


def test_quantize_dequantize_helpers(rng):
    tensor = rng.normal(size=(6, 6))
    quantized, quantizer = quantize_tensor(tensor, bits=8)
    restored = dequantize_tensor(quantized, quantizer)
    assert np.abs(restored - tensor).max() <= quantizer.scale / 2 + 1e-12


def test_quantization_error_decreases_with_more_bits(rng):
    tensor = rng.normal(size=(200,))
    assert quantization_error(tensor, bits=8) < quantization_error(tensor, bits=4)


def test_quantization_error_of_empty_tensor_is_zero():
    assert quantization_error(np.zeros((0,))) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        LinearQuantizer(bits=1)
    with pytest.raises(ValueError):
        LinearQuantizer(bits=8, scale=0.0)


# -- calibration strategies ---------------------------------------------------------

def test_calibrations_registry_names_both_strategies():
    assert CALIBRATIONS == ("max", "percentile")


def test_percentile_calibration_shrinks_scale_on_outliers(rng):
    tensor = rng.normal(size=(1000,))
    tensor[0] = 1000.0  # a single outlier dominates the max-magnitude fit
    by_max = LinearQuantizer.fit(tensor, bits=8, calibration="max")
    by_percentile = LinearQuantizer.fit(tensor, bits=8, calibration="percentile",
                                        percentile=99.0)
    assert by_percentile.scale < by_max.scale / 100
    # The outlier saturates under the percentile fit, nothing under max.
    assert by_max.saturation_rate(tensor) == 0.0
    assert 0.0 < by_percentile.saturation_rate(tensor) <= 0.02


def test_percentile_calibration_beats_max_on_heavy_tails_at_low_bits(rng):
    tensor = rng.standard_t(df=2, size=(5000,))  # heavy-tailed
    by_max = LinearQuantizer.fit(tensor, bits=3, calibration="max")
    by_percentile = LinearQuantizer.fit(tensor, bits=3, calibration="percentile",
                                        percentile=99.0)
    assert by_percentile.rmse(tensor) < by_max.rmse(tensor)


def test_percentile_100_matches_max_calibration(rng):
    tensor = rng.normal(size=(64,))
    by_max = LinearQuantizer.fit(tensor, calibration="max")
    by_percentile = LinearQuantizer.fit(tensor, calibration="percentile",
                                        percentile=100.0)
    assert by_percentile.scale == by_max.scale


def test_percentile_falls_back_to_max_on_mostly_zero_tensor():
    tensor = np.zeros(1000)
    tensor[0] = 5.0  # the 99th percentile of |tensor| is 0
    quantizer = LinearQuantizer.fit(tensor, bits=8, calibration="percentile",
                                    percentile=99.0)
    assert quantizer.scale == pytest.approx(5.0 / 127)


def test_zero_tensor_fast_path_for_both_calibrations():
    for calibration in CALIBRATIONS:
        for tensor in (np.zeros((4, 4)), np.zeros((0,))):
            quantizer = LinearQuantizer.fit(tensor, calibration=calibration)
            assert quantizer.scale == 1.0
            assert quantizer.saturation_rate(tensor) == 0.0


def test_fit_rejects_unknown_calibration_and_bad_percentile(rng):
    tensor = rng.normal(size=(8,))
    with pytest.raises(ValueError):
        LinearQuantizer.fit(tensor, calibration="entropy")
    with pytest.raises(ValueError):
        LinearQuantizer.fit(tensor, calibration="percentile", percentile=0.0)
    with pytest.raises(ValueError):
        LinearQuantizer.fit(tensor, calibration="percentile", percentile=101.0)


def test_saturation_rate_counts_clipped_values():
    quantizer = LinearQuantizer(bits=8, scale=1.0)
    tensor = np.array([0.0, 100.0, 200.0, -300.0])  # 200 and -300 clip
    assert quantizer.saturation_rate(tensor) == pytest.approx(0.5)
    assert quantizer.rmse(np.array([0.25])) == pytest.approx(0.25)


def test_quantize_with_saturation_matches_the_two_call_form(rng):
    quantizer = LinearQuantizer(bits=6, scale=0.05)
    tensor = rng.normal(size=(13, 7)) * 3.0
    quantized, rate = quantizer.quantize_with_saturation(tensor)
    np.testing.assert_array_equal(quantized, quantizer.quantize(tensor))
    assert rate == pytest.approx(quantizer.saturation_rate(tensor))
    empty, empty_rate = quantizer.quantize_with_saturation(np.zeros((0, 4)))
    assert empty.shape == (0, 4) and empty_rate == 0.0


def test_fit_on_nan_tensor_falls_back_to_unit_scale():
    """A diverged model's NaN activations must not poison the scale."""
    tensor = np.array([1.0, np.nan, 2.0])
    for calibration in CALIBRATIONS:
        quantizer = LinearQuantizer.fit(tensor, calibration=calibration)
        assert quantizer.scale == 1.0
    np.testing.assert_array_equal(
        LinearQuantizer.fit(tensor).quantize(np.array([1.0, -2.0])), [1, -2])


def test_integer_matmul_with_scales_approximates_float_matmul(rng):
    """The hardware path: quantize weights and inputs, multiply integers,
    rescale — the result must be close to the float product."""
    weights = rng.normal(size=(16, 24))
    data = rng.normal(size=(24, 10))
    w_int, w_quant = quantize_tensor(weights)
    d_int, d_quant = quantize_tensor(data)
    approx = (w_int @ d_int) * (w_quant.scale * d_quant.scale)
    exact = weights @ data
    relative = np.abs(approx - exact).mean() / np.abs(exact).mean()
    assert relative < 0.02


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), bits=st.integers(4, 12))
def test_property_roundtrip_error_bounded(seed, bits):
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=(32,)) * rng.uniform(0.1, 10.0)
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    error = np.abs(quantizer.roundtrip(tensor) - tensor).max()
    assert error <= quantizer.scale / 2 + 1e-9
