"""Tests for 8-bit linear fixed-point quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    LinearQuantizer,
    dequantize_tensor,
    quantization_error,
    quantize_tensor,
)


def test_quantizer_range_for_8_bits():
    quantizer = LinearQuantizer(bits=8, scale=1.0)
    assert quantizer.qmax == 127
    assert quantizer.qmin == -128


def test_fit_maps_largest_magnitude_to_qmax(rng):
    tensor = rng.normal(size=(10, 10))
    quantizer = LinearQuantizer.fit(tensor, bits=8)
    quantized = quantizer.quantize(tensor)
    assert np.abs(quantized).max() == 127


def test_quantize_clips_to_representable_range():
    quantizer = LinearQuantizer(bits=8, scale=1.0)
    quantized = quantizer.quantize(np.array([1000.0, -1000.0]))
    np.testing.assert_array_equal(quantized, [127, -128])


def test_zero_maps_to_zero(rng):
    tensor = rng.normal(size=(5, 5))
    tensor[0, 0] = 0.0
    quantizer = LinearQuantizer.fit(tensor)
    assert quantizer.quantize(tensor)[0, 0] == 0


def test_roundtrip_error_is_bounded_by_half_scale(rng):
    tensor = rng.normal(size=(100,))
    quantizer = LinearQuantizer.fit(tensor)
    error = np.abs(quantizer.roundtrip(tensor) - tensor)
    assert error.max() <= quantizer.scale / 2 + 1e-12


def test_fit_on_all_zero_tensor_uses_unit_scale():
    quantizer = LinearQuantizer.fit(np.zeros((3, 3)))
    assert quantizer.scale == 1.0
    assert np.all(quantizer.quantize(np.zeros((3, 3))) == 0)


def test_quantize_dequantize_helpers(rng):
    tensor = rng.normal(size=(6, 6))
    quantized, quantizer = quantize_tensor(tensor, bits=8)
    restored = dequantize_tensor(quantized, quantizer)
    assert np.abs(restored - tensor).max() <= quantizer.scale / 2 + 1e-12


def test_quantization_error_decreases_with_more_bits(rng):
    tensor = rng.normal(size=(200,))
    assert quantization_error(tensor, bits=8) < quantization_error(tensor, bits=4)


def test_quantization_error_of_empty_tensor_is_zero():
    assert quantization_error(np.zeros((0,))) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        LinearQuantizer(bits=1)
    with pytest.raises(ValueError):
        LinearQuantizer(bits=8, scale=0.0)


def test_integer_matmul_with_scales_approximates_float_matmul(rng):
    """The hardware path: quantize weights and inputs, multiply integers,
    rescale — the result must be close to the float product."""
    weights = rng.normal(size=(16, 24))
    data = rng.normal(size=(24, 10))
    w_int, w_quant = quantize_tensor(weights)
    d_int, d_quant = quantize_tensor(data)
    approx = (w_int @ d_int) * (w_quant.scale * d_quant.scale)
    exact = weights @ data
    relative = np.abs(approx - exact).mean() / np.abs(exact).mean()
    assert relative < 0.02


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), bits=st.integers(4, 12))
def test_property_roundtrip_error_bounded(seed, bits):
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=(32,)) * rng.uniform(0.1, 10.0)
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    error = np.abs(quantizer.roundtrip(tensor) - tensor).max()
    assert error <= quantizer.scale / 2 + 1e-9
