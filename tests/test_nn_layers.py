"""Layer tests: output shapes, semantics, and numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    MaxPool2d,
    PointwiseConv2d,
    ReLU,
    Shift2d,
    ShiftConv2d,
)
from repro.nn.layers import SHIFT_DIRECTIONS

from tests.conftest import numerical_gradient


def check_input_gradient(layer, x, rtol=1e-4, atol=1e-6):
    """Compare the layer's backward pass against finite differences."""
    out = layer.forward(x)
    upstream = np.random.default_rng(0).normal(size=out.shape)

    def loss() -> float:
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, x)
    layer.forward(x)
    analytic = layer.backward(upstream)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_weight_gradient(layer, parameter, x, rtol=1e-4, atol=1e-6):
    """Compare a parameter gradient against finite differences."""
    out = layer.forward(x)
    upstream = np.random.default_rng(1).normal(size=out.shape)

    def loss() -> float:
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, parameter.data)
    parameter.zero_grad()
    layer.forward(x)
    layer.backward(upstream)
    np.testing.assert_allclose(parameter.grad, numeric, rtol=rtol, atol=atol)


# -- Dense ---------------------------------------------------------------------

def test_dense_output_shape_and_value(rng):
    layer = Dense(3, 2, rng=rng)
    x = rng.normal(size=(4, 3))
    out = layer.forward(x)
    assert out.shape == (4, 2)
    np.testing.assert_allclose(out, x @ layer.weight.data.T + layer.bias.data)


def test_dense_rejects_wrong_input_width(rng):
    layer = Dense(3, 2, rng=rng)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(4, 5)))


def test_dense_input_gradient(rng):
    layer = Dense(4, 3, rng=rng)
    check_input_gradient(layer, rng.normal(size=(2, 4)))


def test_dense_weight_and_bias_gradients(rng):
    layer = Dense(4, 3, rng=rng)
    x = rng.normal(size=(2, 4))
    check_weight_gradient(layer, layer.weight, x)
    check_weight_gradient(layer, layer.bias, x)


def test_dense_masked_weight_gradient_stays_zero(rng):
    layer = Dense(3, 2, rng=rng)
    mask = np.array([[1, 0, 1], [0, 1, 0]], dtype=float)
    layer.weight.set_mask(mask)
    layer.forward(rng.normal(size=(5, 3)))
    layer.backward(np.ones((5, 2)))
    assert np.all(layer.weight.grad[mask == 0] == 0)


# -- PointwiseConv2d -------------------------------------------------------------

def test_pointwise_matches_explicit_matmul(rng):
    layer = PointwiseConv2d(3, 5, rng=rng)
    x = rng.normal(size=(2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 5, 4, 4)
    expected = np.einsum("nc,bchw->bnhw", layer.weight.data, x)
    np.testing.assert_allclose(out, expected)


def test_pointwise_weight_is_the_filter_matrix(rng):
    layer = PointwiseConv2d(7, 11, rng=rng)
    assert layer.weight.shape == (11, 7)


def test_pointwise_input_gradient(rng):
    layer = PointwiseConv2d(3, 2, rng=rng)
    check_input_gradient(layer, rng.normal(size=(2, 3, 3, 3)))


def test_pointwise_weight_gradient(rng):
    layer = PointwiseConv2d(3, 2, rng=rng)
    check_weight_gradient(layer, layer.weight, rng.normal(size=(2, 3, 3, 3)))


def test_pointwise_rejects_wrong_channel_count(rng):
    layer = PointwiseConv2d(3, 2, rng=rng)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(1, 4, 3, 3)))


def test_pointwise_bias_adds_per_channel(rng):
    layer = PointwiseConv2d(2, 2, bias=True, rng=rng)
    layer.bias.data[:] = [1.0, -1.0]
    out = layer.forward(np.zeros((1, 2, 2, 2)))
    np.testing.assert_allclose(out[0, 0], 1.0)
    np.testing.assert_allclose(out[0, 1], -1.0)


# -- Shift2d / ShiftConv2d ----------------------------------------------------------

def test_shift_assigns_all_nine_directions_cyclically():
    layer = Shift2d(20)
    counts = np.bincount(layer.assignment, minlength=len(SHIFT_DIRECTIONS))
    assert counts.sum() == 20
    assert counts.max() - counts.min() <= 1


def test_shift_moves_pixels_with_zero_fill():
    layer = Shift2d(2)
    # Channel 1 is assigned direction (-1, 0): content moves up by one row.
    x = np.zeros((1, 2, 3, 3))
    x[0, 1, 1, 1] = 5.0
    out = layer.forward(x)
    assert out[0, 1, 0, 1] == 5.0
    assert out[0, 1, 1, 1] == 0.0
    # Channel 0 has the centre direction: unchanged.
    x0 = np.zeros((1, 2, 3, 3))
    x0[0, 0, 2, 2] = 3.0
    np.testing.assert_allclose(layer.forward(x0)[0, 0], x0[0, 0])


def test_shift_backward_is_inverse_shift(rng):
    layer = Shift2d(9)
    x = rng.normal(size=(2, 9, 5, 5))
    check_input_gradient(layer, x)


def test_shift_preserves_shape(rng):
    layer = Shift2d(4)
    x = rng.normal(size=(3, 4, 6, 6))
    assert layer.forward(x).shape == x.shape


def test_shiftconv_weight_property_exposes_filter_matrix(rng):
    layer = ShiftConv2d(4, 6, rng=rng)
    assert layer.weight is layer.pointwise.weight
    assert layer.weight.shape == (6, 4)


def test_shiftconv_stride_subsamples_output(rng):
    layer = ShiftConv2d(3, 5, stride=2, rng=rng)
    out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
    assert out.shape == (2, 5, 4, 4)


def test_shiftconv_gradients(rng):
    layer = ShiftConv2d(3, 4, rng=rng)
    x = rng.normal(size=(2, 3, 4, 4))
    check_input_gradient(layer, x)
    check_weight_gradient(layer, layer.weight, x)


def test_shiftconv_strided_gradients(rng):
    layer = ShiftConv2d(2, 3, stride=2, rng=rng)
    x = rng.normal(size=(1, 2, 4, 4))
    check_input_gradient(layer, x)
    check_weight_gradient(layer, layer.weight, x)


# -- BatchNorm2d ----------------------------------------------------------------------

def test_batchnorm_normalizes_in_training_mode(rng):
    layer = BatchNorm2d(3)
    x = rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
    out = layer.forward(x)
    assert abs(out.mean()) < 1e-6
    assert abs(out.std() - 1.0) < 1e-2


def test_batchnorm_uses_running_stats_in_eval_mode(rng):
    layer = BatchNorm2d(2)
    x = rng.normal(loc=3.0, size=(16, 2, 4, 4))
    for _ in range(20):
        layer.forward(x)
    layer.eval()
    out = layer.forward(x)
    # With converged running statistics the eval output is close to normalized.
    assert abs(out.mean()) < 0.5


def test_batchnorm_input_gradient(rng):
    layer = BatchNorm2d(2)
    check_input_gradient(layer, rng.normal(size=(4, 2, 3, 3)), rtol=1e-3, atol=1e-5)


def test_batchnorm_gamma_beta_gradients(rng):
    layer = BatchNorm2d(2)
    x = rng.normal(size=(4, 2, 3, 3))
    check_weight_gradient(layer, layer.gamma, x, rtol=1e-3, atol=1e-5)
    check_weight_gradient(layer, layer.beta, x, rtol=1e-3, atol=1e-5)


def test_batchnorm_rejects_wrong_channels(rng):
    layer = BatchNorm2d(2)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(1, 3, 2, 2)))


# -- activations, pooling, dropout ------------------------------------------------------

def test_relu_zeroes_negative_values():
    layer = ReLU()
    out = layer.forward(np.array([[-1.0, 2.0], [0.0, -3.0]]))
    np.testing.assert_allclose(out, [[0.0, 2.0], [0.0, 0.0]])


def test_relu_gradient_masks_negative_inputs(rng):
    layer = ReLU()
    check_input_gradient(layer, rng.normal(size=(3, 4)) + 0.1)


def test_identity_passes_through(rng):
    layer = Identity()
    x = rng.normal(size=(2, 3))
    np.testing.assert_allclose(layer.forward(x), x)
    np.testing.assert_allclose(layer.backward(x), x)


def test_flatten_and_backward_restores_shape(rng):
    layer = Flatten()
    x = rng.normal(size=(2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 48)
    assert layer.backward(out).shape == x.shape


def test_avgpool_averages_blocks():
    layer = AvgPool2d(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_avgpool_gradient(rng):
    layer = AvgPool2d(2)
    check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)))


def test_avgpool_rejects_nondivisible_size(rng):
    layer = AvgPool2d(3)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(1, 1, 4, 4)))


def test_maxpool_takes_block_maximum():
    layer = MaxPool2d(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])


def test_maxpool_gradient_flows_only_to_maxima(rng):
    layer = MaxPool2d(2)
    x = rng.normal(size=(2, 2, 4, 4))
    check_input_gradient(layer, x)


def test_maxpool_tie_breaking_gives_each_window_unit_gradient():
    layer = MaxPool2d(2)
    x = np.ones((1, 1, 2, 2))
    layer.forward(x)
    grad = layer.backward(np.ones((1, 1, 1, 1)))
    assert grad.sum() == 1.0


def test_global_avgpool_shape_and_gradient(rng):
    layer = GlobalAvgPool2d()
    x = rng.normal(size=(2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 3)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
    check_input_gradient(layer, x)


def test_dropout_is_identity_in_eval_mode(rng):
    layer = Dropout(0.5, rng=rng)
    layer.eval()
    x = rng.normal(size=(4, 4))
    np.testing.assert_allclose(layer.forward(x), x)


def test_dropout_scales_kept_activations(rng):
    layer = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((1000,))
    out = layer.forward(x)
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)
    assert 0.3 < (out != 0).mean() < 0.7


def test_dropout_backward_uses_same_mask(rng):
    layer = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((100,))
    out = layer.forward(x)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_allclose((grad != 0), (out != 0))
