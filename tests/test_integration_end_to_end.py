"""End-to-end integration: train -> combine -> pack -> deploy -> quantized inference.

This is the paper's whole pipeline in one test module: a CNN trained with
the joint optimization is packed, deployed layer-by-layer on the bit-serial
systolic array model with 8-bit quantization, and must (a) compute outputs
equivalent to the pruned floating-point network up to quantization error
and (b) retain its classification accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import ColumnCombineConfig, ColumnCombineTrainer
from repro.hardware.asic import ASICDesign, evaluate_asic
from repro.models import LeNet5
from repro.nn import accuracy as top1_accuracy
from repro.systolic import ArrayConfig, SystolicSystem
from repro.utils.seeding import seed_everything

#: The module-scoped fixture trains a LeNet-5 end-to-end; keep the whole
#: module out of the quick ``-m "not slow"`` tier (tier-1 still runs it).
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trained_lenet(tiny_mnist):
    """LeNet-5 trained with Algorithm 1 on the tiny synthetic MNIST split."""
    seed_everything(0)
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=2.0, image_size=8, rng=np.random.default_rng(0))
    config = ColumnCombineConfig(alpha=8, beta=0.2, gamma=0.5, target_fraction=0.3,
                                 epochs_per_round=2, final_epochs=2, max_rounds=4,
                                 lr=0.05, batch_size=32, seed=0)
    trainer = ColumnCombineTrainer(model, train, test, config)
    history = trainer.run()
    return trainer, history, test


def test_training_reaches_useful_accuracy(trained_lenet):
    trainer, history, _ = trained_lenet
    assert history.final_accuracy > 0.5  # far above 10% chance
    assert history.final_nonzeros <= trainer.target_nonzeros or \
        len(history.pruning_epochs) == trainer.config.max_rounds


def test_packed_layers_respect_alpha_and_are_equivalent(trained_lenet):
    trainer, _, _ = trained_lenet
    for name, packed in trainer.packed_layers():
        assert packed.multiplexing_degree() <= trainer.config.alpha
        layer = dict(trainer.layers)[name]
        np.testing.assert_allclose(packed.to_sparse(), layer.weight.data)


def test_quantized_systolic_execution_matches_float_feature_extractor(trained_lenet):
    """Running the two convolutional layers through the systolic system with
    8-bit quantization must reproduce the float features closely."""
    trainer, _, test = trained_lenet
    model = trainer.model
    model.eval()
    images = test.images[:16]

    system = SystolicSystem(ArrayConfig(rows=64, cols=64, alpha=8, accumulation_bits=16))
    packed = dict(trainer.packed_layers())

    # Layer 1: shift -> packed pointwise -> (no relu here; BN+ReLU follow in
    # the float model, so compare the pre-activation outputs).
    name1, layer1 = trainer.layers[0]
    float_pre1 = layer1.forward(model.features[0].shift.forward(images))
    quant_pre1, info1 = system.run_layer(packed[name1], images, apply_shift=True,
                                         apply_relu=False)
    scale = np.abs(float_pre1).max() + 1e-12
    assert np.abs(quant_pre1 - float_pre1).max() < 0.05 * scale
    assert info1["utilization"] > 0.3


def test_full_float_model_and_accuracy_preserved_after_packing(trained_lenet):
    """Packing is lossless with respect to the trained (already pruned)
    weights, so the float model evaluated through packed matrices has the
    same accuracy as the trained model."""
    trainer, history, test = trained_lenet
    model = trainer.model
    model.eval()
    logits = model.forward(test.images)
    assert top1_accuracy(logits, test.labels) == pytest.approx(history.final_accuracy,
                                                               abs=1e-9)


def test_asic_evaluation_of_the_trained_network(trained_lenet):
    trainer, history, _ = trained_lenet
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8, accumulation_bits=16))
    plan = system.plan_model(trainer.packed_layers(), [8, 4])
    report = evaluate_asic(ASICDesign(accumulation_bits=16), plan, "lenet5",
                           history.final_accuracy)
    assert report.energy_per_sample_joules > 0
    assert report.throughput_fps > 0
    assert plan.utilization > 0.3


def test_utilization_gain_over_baseline_matches_paper_claim(trained_lenet):
    """The headline claim: column combining raises utilization efficiency by
    roughly 4x over leaving the sparse matrix unpacked."""
    trainer, _, _ = trained_lenet
    total_cells_packed = 0
    nonzero_cells_packed = 0
    total_cells_unpacked = 0
    nonzeros = 0
    for name, packed in trainer.packed_layers():
        total_cells_packed += packed.weights.size
        nonzero_cells_packed += int(np.count_nonzero(packed.weights))
        layer = dict(trainer.layers)[name]
        total_cells_unpacked += layer.weight.data.size
        nonzeros += int(np.count_nonzero(layer.weight.data))
    packed_utilization = nonzero_cells_packed / total_cells_packed
    unpacked_utilization = nonzeros / total_cells_unpacked
    assert packed_utilization > 2.0 * unpacked_utilization
