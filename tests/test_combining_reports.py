"""Tests for the model packing reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import group_columns, pack_filter_matrix, packing_report


def make_packed(rng, rows, cols, density=0.15):
    matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    return pack_filter_matrix(matrix, grouping)


def test_layer_report_fields_are_consistent(rng):
    packed = make_packed(rng, 96, 94)
    report = packing_report([("layer", packed)], array_rows=32, array_cols=32)
    layer = report.layers[0]
    assert layer.rows == 96
    assert layer.columns_before == 94
    assert layer.columns_after == packed.num_groups
    assert layer.nonzeros == int(np.count_nonzero(packed.weights))
    assert layer.column_reduction > 1.0
    assert layer.tile_reduction >= 1.0
    assert layer.tiles_before == 9


def test_model_report_totals(rng):
    packed_layers = [("a", make_packed(rng, 64, 80)), ("b", make_packed(rng, 96, 94))]
    report = packing_report(packed_layers)
    assert report.total_tiles_before == sum(l.tiles_before for l in report.layers)
    assert report.total_tiles_after <= report.total_tiles_before
    assert 0 < report.overall_packing_efficiency <= 1.0
    assert report.max_multiplexing_degree <= 8
    rows = report.to_rows()
    assert len(rows) == 2 and rows[0][0] == "a"


def test_report_with_spatial_sizes_includes_buffers(rng):
    packed_layers = [("a", make_packed(rng, 64, 80)), ("b", make_packed(rng, 96, 64))]
    report = packing_report(packed_layers, spatial_sizes=[16, 8])
    assert report.buffers is not None
    assert report.buffers.total_bytes > 0


def test_report_spatial_size_mismatch_raises(rng):
    packed_layers = [("a", make_packed(rng, 32, 32))]
    with pytest.raises(ValueError):
        packing_report(packed_layers, spatial_sizes=[8, 8])


def test_empty_report_is_well_defined():
    report = packing_report([])
    assert report.total_nonzeros == 0
    assert report.overall_packing_efficiency == 0.0
    assert report.max_multiplexing_degree == 0
