"""Tests for the energy / area models and ASIC / FPGA design evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import group_columns, pack_filter_matrix
from repro.hardware import (
    ASICDesign,
    AreaModel,
    EnergyModel,
    FPGADesign,
    evaluate_asic,
    evaluate_fpga,
)
from repro.hardware.energy import sram_traffic_bytes
from repro.hardware.optimality import (
    achieved_energy_efficiency,
    energy_efficiency_ratio,
    optimal_energy_efficiency,
    ratio_from_packing_efficiency,
)
from repro.hardware.reference import PAPER_CLAIMS, TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS
from repro.systolic import ArrayConfig, SystolicSystem


# -- energy model --------------------------------------------------------------------

def test_compute_energy_scales_with_macs():
    model = EnergyModel()
    assert model.compute_energy(1000) == pytest.approx(1000 * model.mac_pj)
    assert model.compute_energy(0) == 0.0


def test_16bit_macs_are_cheaper():
    model = EnergyModel()
    assert model.mac_energy(16) < model.mac_energy(32)


def test_memory_energy_includes_dram_when_present():
    model = EnergyModel()
    on_chip_only = model.memory_energy(100)
    with_dram = model.memory_energy(100, dram_bytes=10)
    assert with_dram > on_chip_only


def test_inference_energy_breakdown_and_ratio():
    model = EnergyModel()
    breakdown = model.inference_energy(10_000, 500)
    assert breakdown.total_pj == pytest.approx(breakdown.compute_pj + breakdown.memory_pj)
    assert breakdown.total_joules == pytest.approx(breakdown.total_pj * 1e-12)
    assert breakdown.memory_to_compute_ratio == pytest.approx(
        breakdown.memory_pj / breakdown.compute_pj)


def test_energy_validation():
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.compute_energy(-1)
    with pytest.raises(ValueError):
        model.memory_energy(-1)
    with pytest.raises(ValueError):
        sram_traffic_bytes(-1, 0, 0)


def test_sram_traffic_sums_components():
    assert sram_traffic_bytes(100, 50, 25) == 175


# -- area model -----------------------------------------------------------------------

def test_mx_cell_larger_than_il_cell_but_modestly():
    model = AreaModel()
    il = model.il_cell_mm2
    mx = model.mx_cell_area(alpha=8)
    assert il < mx < 1.5 * il


def test_array_area_by_cell_type():
    model = AreaModel()
    assert model.array_area(32, 32, cell_type="bl") < model.array_area(32, 32, cell_type="il")
    assert model.array_area(32, 32, alpha=8, cell_type="mx") > \
        model.array_area(32, 32, cell_type="il")
    with pytest.raises(ValueError):
        model.array_area(32, 32, cell_type="unknown")


def test_design_area_includes_sram_and_peripherals():
    model = AreaModel()
    total = model.design_area(32, 32, sram_kilobytes=64)
    assert total > model.array_area(32, 32) + model.sram_area(64)


def test_area_validation():
    model = AreaModel()
    with pytest.raises(ValueError):
        model.mx_cell_area(0)
    with pytest.raises(ValueError):
        model.sram_area(-1)
    with pytest.raises(ValueError):
        model.array_area(0, 32)


# -- ASIC / FPGA evaluation ----------------------------------------------------------------

def make_plan(rng, alpha=8, gamma=0.5):
    matrix = rng.normal(size=(96, 94)) * (rng.random((96, 94)) < 0.16)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    packed = pack_filter_matrix(matrix, grouping)
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=max(alpha, 1)))
    return system.plan_model([("layer", packed)], [16])


def test_asic_report_metrics_are_consistent(rng):
    plan = make_plan(rng)
    report = evaluate_asic(ASICDesign(), plan, "net", accuracy=0.9)
    assert report.latency_seconds > 0
    assert report.throughput_fps == pytest.approx(1.0 / report.latency_seconds)
    assert report.energy_efficiency_fpj == pytest.approx(
        1.0 / report.energy_per_sample_joules)
    assert report.area_efficiency == pytest.approx(report.throughput_fps / report.area_mm2)


def test_column_combining_improves_asic_energy_efficiency(rng):
    packed_plan = make_plan(rng, alpha=8, gamma=0.5)
    baseline_plan = make_plan(rng, alpha=1, gamma=0.0)
    design = ASICDesign()
    packed_report = evaluate_asic(design, packed_plan, "net", 0.9)
    baseline_report = evaluate_asic(design, baseline_plan, "net", 0.9)
    gain = packed_report.energy_efficiency_fpj / baseline_report.energy_efficiency_fpj
    assert gain > 2.0
    assert packed_report.throughput_fps > baseline_report.throughput_fps


def test_asic_design_validation():
    with pytest.raises(ValueError):
        ASICDesign(frequency_hz=0.0)


def test_fpga_report_includes_static_energy(rng):
    plan = make_plan(rng)
    report = evaluate_fpga(FPGADesign(), plan, "net", 0.9)
    assert report.static_energy_joules > 0
    assert report.energy_per_sample_joules > report.dynamic_energy.total_joules
    assert report.energy_efficiency_fpj == pytest.approx(
        1.0 / report.energy_per_sample_joules)


def test_fpga_less_energy_efficient_than_asic(rng):
    plan = make_plan(rng)
    asic = evaluate_asic(ASICDesign(), plan, "net", 0.9)
    fpga = evaluate_fpga(FPGADesign(), plan, "net", 0.9)
    assert fpga.energy_per_sample_joules > asic.energy_per_sample_joules


def test_fpga_design_validation():
    with pytest.raises(ValueError):
        FPGADesign(frequency_hz=-1)
    with pytest.raises(ValueError):
        FPGADesign(fabric_energy_overhead=0.5)
    with pytest.raises(ValueError):
        FPGADesign(static_power_w=-1)


# -- optimality analysis (Section 7.2) ------------------------------------------------------

def test_efficiency_ratio_approaches_packing_efficiency_for_small_r():
    assert energy_efficiency_ratio(c=1.0, r=0.0) == pytest.approx(1.0)
    assert ratio_from_packing_efficiency(0.945, 0.0) == pytest.approx(0.945)
    # With r = 0.06 (LeNet-5) the ratio stays close to the packing efficiency.
    assert ratio_from_packing_efficiency(0.945, 0.06) == pytest.approx(0.948, abs=5e-3)


def test_efficiency_ratio_monotone_in_c_and_r():
    assert energy_efficiency_ratio(2.0, 0.1) < energy_efficiency_ratio(1.5, 0.1)
    # Larger memory share dampens the penalty of extra MACs.
    assert energy_efficiency_ratio(2.0, 1.0) > energy_efficiency_ratio(2.0, 0.0)


def test_efficiency_ratio_validation():
    with pytest.raises(ValueError):
        energy_efficiency_ratio(0.5, 0.1)
    with pytest.raises(ValueError):
        energy_efficiency_ratio(1.0, -0.1)
    with pytest.raises(ValueError):
        ratio_from_packing_efficiency(0.0, 0.1)


def test_achieved_vs_optimal_energy_efficiency_consistent():
    optimal = optimal_energy_efficiency(0.3, 1_000_000, 10_000)
    achieved = achieved_energy_efficiency(0.3, 1_000_000, c=2.0, memory_energy_pj=10_000)
    assert achieved < optimal
    ratio = achieved / optimal
    # r is measured against the achieved design's compute energy (c * Nopt MACs).
    r = 10_000 / (0.3 * 2.0 * 1_000_000)
    assert ratio == pytest.approx(energy_efficiency_ratio(2.0, r))


# -- reference tables -------------------------------------------------------------------------

def test_reference_tables_contain_the_papers_rows():
    assert any(row.platform.startswith("Ours") for row in TABLE1_ROWS)
    assert any("SC-DCNN" in row.platform for row in TABLE1_ROWS)
    assert any(row.platform == "Ours" for row in TABLE2_ROWS)
    assert any(row.platform == "Ours" for row in TABLE3_ROWS)


def test_paper_claims_are_self_consistent():
    ours_t2 = next(row for row in TABLE2_ROWS if row.platform == "Ours")
    best_other = max(row.energy_efficiency_fpj for row in TABLE2_ROWS
                     if row.platform != "Ours")
    assert ours_t2.energy_efficiency_fpj / best_other >= PAPER_CLAIMS["fpga_energy_gain"]

    ours_t3 = next(row for row in TABLE3_ROWS if row.platform == "Ours")
    best_other_latency = min(row.latency_microseconds for row in TABLE3_ROWS
                             if row.platform != "Ours")
    assert best_other_latency / ours_t3.latency_microseconds >= PAPER_CLAIMS["latency_gain"] - 1
