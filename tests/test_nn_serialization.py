"""Tests for state-dict save / load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential
from repro.nn.serialization import load_state_dict, state_dict


def make_model(rng):
    return Sequential(Dense(4, 3, rng=rng), ReLU(), Dense(3, 2, rng=rng))


def test_state_dict_contains_every_parameter(rng):
    model = make_model(rng)
    state = state_dict(model)
    assert len(state) == 4  # two weights + two biases, no masks


def test_roundtrip_restores_exact_values(rng):
    source = make_model(rng)
    target = make_model(np.random.default_rng(99))
    load_state_dict(target, state_dict(source))
    for (_, p_src), (_, p_dst) in zip(source.named_parameters(), target.named_parameters()):
        np.testing.assert_array_equal(p_src.data, p_dst.data)


def test_masks_roundtrip(rng):
    source = make_model(rng)
    mask = np.zeros_like(source[0].weight.data)
    mask[0, :] = 1
    source[0].weight.set_mask(mask)
    target = make_model(np.random.default_rng(7))
    load_state_dict(target, state_dict(source))
    np.testing.assert_array_equal(target[0].weight.mask, mask)
    assert target[0].weight.nonzero_count() == int(mask.sum())


def test_loading_clears_stale_masks(rng):
    source = make_model(rng)
    target = make_model(rng)
    target[0].weight.set_mask(np.zeros_like(target[0].weight.data))
    load_state_dict(target, state_dict(source))
    assert target[0].weight.mask is None


def test_state_dict_is_a_copy_not_a_view(rng):
    model = make_model(rng)
    state = state_dict(model)
    key = next(iter(state))
    state[key][:] = 123.0
    assert not np.any(model.parameters()[0].data == 123.0) or key not in (
        model.named_parameters()[0][0],
    )


def test_strict_load_rejects_missing_and_unknown_keys(rng):
    model = make_model(rng)
    state = state_dict(model)
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        load_state_dict(model, state)
    state = state_dict(model)
    state["nonexistent"] = np.zeros(3)
    with pytest.raises(KeyError):
        load_state_dict(model, state)


def test_shape_mismatch_raises(rng):
    model = make_model(rng)
    state = state_dict(model)
    key = next(iter(state))
    state[key] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        load_state_dict(model, state)
