"""Tests for the LeNet-5 / VGG / ResNet-20 shift + pointwise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import LeNet5, ResNet20, VGG, build_model, packable_layers
from repro.models.registry import filter_matrices
from repro.nn import PointwiseConv2d, SoftmaxCrossEntropy


@pytest.mark.parametrize("name,in_channels,image_size", [
    ("lenet5", 1, 8),
    ("vgg", 3, 8),
    ("resnet20", 3, 8),
])
def test_forward_produces_logits(name, in_channels, image_size, rng):
    kwargs = {"in_channels": in_channels, "num_classes": 10, "scale": 0.25, "rng": rng}
    if name == "lenet5":
        kwargs["image_size"] = image_size
    model = build_model(name, **kwargs)
    x = rng.normal(size=(4, in_channels, image_size, image_size))
    logits = model.forward(x)
    assert logits.shape == (4, 10)
    assert np.all(np.isfinite(logits))


@pytest.mark.parametrize("name,in_channels", [("lenet5", 1), ("vgg", 3), ("resnet20", 3)])
def test_backward_populates_every_gradient(name, in_channels, rng):
    kwargs = {"in_channels": in_channels, "num_classes": 10, "scale": 0.25, "rng": rng}
    if name == "lenet5":
        kwargs["image_size"] = 8
    model = build_model(name, **kwargs)
    x = rng.normal(size=(4, in_channels, 8, 8))
    labels = rng.integers(0, 10, size=4)
    loss_fn = SoftmaxCrossEntropy()
    loss_fn(model.forward(x), labels)
    model.backward(loss_fn.backward())
    grads = [np.abs(p.grad).sum() for p in model.parameters()]
    assert all(np.isfinite(g) for g in grads)
    # The vast majority of parameters receive gradient signal.
    nonzero = sum(g > 0 for g in grads)
    assert nonzero >= 0.8 * len(grads)


def test_lenet_packable_layers_are_its_two_convolutions(rng):
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=rng)
    layers = model.packable_layers()
    assert len(layers) == 2
    assert all(isinstance(layer, PointwiseConv2d) for _, layer in layers)


def test_vgg_packable_layers_count_matches_structure(rng):
    model = VGG(in_channels=3, scale=0.25, stage_widths=(16, 32), convs_per_stage=2, rng=rng)
    assert len(model.packable_layers()) == 4


def test_resnet_packable_layers_include_shortcuts(rng):
    model = ResNet20(in_channels=3, scale=0.25, rng=rng)
    layers = model.packable_layers()
    # stem + 9 blocks x 2 convs + 2 projection shortcuts (stage transitions)
    assert len(layers) == 1 + 18 + 2
    names = [name for name, _ in layers]
    assert names[0] == "stem.pointwise"
    assert any("shortcut" in name for name in names)


def test_resnet_strided_blocks_halve_spatial_size(rng):
    model = ResNet20(in_channels=3, scale=0.25, rng=rng)
    x = rng.normal(size=(2, 3, 8, 8))
    assert model.forward(x).shape == (2, 10)


def test_lenet_requires_divisible_image_size(rng):
    with pytest.raises(ValueError):
        LeNet5(image_size=10, rng=rng)


def test_build_model_unknown_name_raises():
    with pytest.raises(KeyError):
        build_model("alexnet")


def test_registry_packable_layers_helper_uses_model_method(rng):
    model = ResNet20(in_channels=3, scale=0.25, rng=rng)
    assert packable_layers(model) == model.packable_layers()


def test_filter_matrices_returns_weight_arrays(rng):
    model = LeNet5(in_channels=1, scale=0.5, image_size=8, rng=rng)
    matrices = filter_matrices(model)
    assert len(matrices) == 2
    assert matrices[0].ndim == 2


def test_scale_changes_channel_widths(rng):
    small = ResNet20(in_channels=3, scale=0.25, rng=rng)
    large = ResNet20(in_channels=3, scale=1.0, rng=np.random.default_rng(0))
    small_params = sum(p.size for p in small.parameters())
    large_params = sum(p.size for p in large.parameters())
    assert large_params > 4 * small_params


def test_models_are_trainable_end_to_end(rng, tiny_mnist):
    """A few SGD steps on LeNet must reduce the training loss."""
    from repro.nn import SGD

    train, _ = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=rng)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    loss_fn = SoftmaxCrossEntropy()
    x, y = train.images[:64], train.labels[:64]
    first_loss = None
    last_loss = None
    for _ in range(15):
        loss = loss_fn(model.forward(x), y)
        if first_loss is None:
            first_loss = loss
        optimizer.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step()
        last_loss = loss
    assert last_loss < first_loss
