"""Tests for the structural / hardware experiments (no training involved).

These verify that each experiment runner produces the paper's qualitative
shape: who wins, and by roughly what factor.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablation_grouping, fig14b, fig15a, fig16, sec72, table3
from repro.experiments.common import format_table
from repro.hardware.reference import PAPER_CLAIMS


# -- Figure 14b -----------------------------------------------------------------------

def test_fig14b_tile_reduction_matches_paper_shape():
    result = fig14b.run()
    assert result["tiles_before"] == 9
    assert result["tiles_after"] <= 4
    assert result["tile_reduction"] >= 2.0
    assert result["columns_after"] < result["columns_before"] / 3
    assert result["density_after"] > 3 * result["density_before"]


def test_fig14b_respects_custom_array_size():
    result = fig14b.run(array_rows=16, array_cols=16)
    assert result["tiles_before"] == 6 * 6


# -- Figure 15a --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig15a_result():
    return fig15a.run()


def test_fig15a_reports_twenty_layers(fig15a_result):
    assert len(fig15a_result["layer_names"]) == 20
    for counts in fig15a_result["tiles"].values():
        assert len(counts) == 20


def test_fig15a_combine_without_pruning_buys_little(fig15a_result):
    totals = fig15a_result["total_tiles"]
    reduction = totals["baseline"] / totals["column-combine"]
    assert reduction < 1.3  # paper: at most ~10%


def test_fig15a_combine_pruning_cuts_tiles_substantially(fig15a_result):
    totals = fig15a_result["total_tiles"]
    reduction = totals["baseline"] / totals["column-combine-pruning"]
    assert reduction >= PAPER_CLAIMS["tile_reduction_min"]


def test_fig15a_largest_layer_reduction_near_paper_value(fig15a_result):
    assert fig15a_result["largest_layer_tile_reduction"] >= 4.0


def test_fig15a_per_layer_monotonicity(fig15a_result):
    tiles = fig15a_result["tiles"]
    for index in range(20):
        assert tiles["column-combine-pruning"][index] <= tiles["column-combine"][index]
        assert tiles["column-combine"][index] <= tiles["baseline"][index]


# -- Figure 16 (structural part only) ---------------------------------------------------------

@pytest.fixture(scope="module")
def fig16_result():
    return fig16.run(include_accuracy=False)


def test_fig16_covers_three_networks_and_settings(fig16_result):
    assert set(fig16_result["results"]) == {"lenet5", "vgg", "resnet20"}
    for per_setting in fig16_result["results"].values():
        assert set(per_setting) == {"baseline", "column-combine", "column-combine-pruning"}


def test_fig16_energy_and_throughput_factors_match_paper_range(fig16_result):
    for network, factors in fig16_result["factors"].items():
        assert factors["tile_reduction"] >= 3.0, network
        assert factors["energy_reduction"] >= 2.5, network
        assert factors["throughput_gain"] >= PAPER_CLAIMS["throughput_gain_min"] - 0.5, network


def test_fig16_utilization_improves_with_combining(fig16_result):
    for per_setting in fig16_result["results"].values():
        assert (per_setting["column-combine-pruning"]["utilization"]
                > per_setting["baseline"]["utilization"] * 2)


def _strip_nan_accuracy(result):
    """fig16 reports accuracy=nan when training is skipped; drop it so dict
    equality is meaningful (nan != nan)."""
    return {
        network: {setting: {key: value for key, value in values.items()
                            if key != "accuracy"}
                  for setting, values in per_setting.items()}
        for network, per_setting in result["results"].items()
    }


def test_fig16_workers_four_equals_workers_one(fig16_result):
    """fig16 now routes through PackingPipeline/PackedModel: the parallel
    fan-out must reproduce the serial run exactly."""
    parallel = fig16.run(include_accuracy=False, workers=4)
    assert _strip_nan_accuracy(parallel) == _strip_nan_accuracy(fig16_result)
    assert parallel["factors"] == fig16_result["factors"]


@pytest.mark.slow
def test_fig16_engines_agree(fig16_result):
    """The reference engines walk the full-size networks, so this stays in
    the thorough tier; the quick tier covers engine agreement on the small
    differential suites."""
    reference = fig16.run(include_accuracy=False, grouping_engine="reference",
                          prune_engine="reference")
    assert _strip_nan_accuracy(reference) == _strip_nan_accuracy(fig16_result)


def test_fig16_reports_packing_efficiency_per_setting(fig16_result):
    for per_setting in fig16_result["results"].values():
        for values in per_setting.values():
            assert 0.0 < values["packing_efficiency"] <= 1.0
        assert (per_setting["column-combine-pruning"]["packing_efficiency"]
                > per_setting["baseline"]["packing_efficiency"])


# -- Table 3 / Section 7.4 ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def table3_result():
    return table3.run()


def test_table3_resnet_pipelining_speedup_near_paper(table3_result):
    speedup = table3_result["networks"]["resnet20"]["speedup"]
    assert speedup > 5.0  # paper: 9.3x; our model: ~8-9x


def test_table3_pipelined_resnet_latency_beats_prior_art(table3_result):
    pipelined_us = table3_result["networks"]["resnet20"]["pipelined_us"]
    best_prior = min(row.latency_microseconds for row in table3_result["paper_rows"]
                     if row.platform != "Ours")
    assert pipelined_us < best_prior


def test_table3_pipelining_always_helps(table3_result):
    for values in table3_result["networks"].values():
        assert values["pipelined_us"] < values["sequential_us"]


# -- Section 7.2 ------------------------------------------------------------------------------------

def test_sec72_paper_example_reproduced():
    result = sec72.run()
    assert result["paper_example"]["lenet5"] == pytest.approx(0.945, abs=0.01)
    assert result["paper_example"]["resnet20"] == pytest.approx(0.945, abs=0.01)


def test_sec72_ratio_grid_is_well_formed():
    result = sec72.run(packing_efficiencies=(0.5, 1.0), memory_ratios=(0.0, 0.1))
    assert len(result["grid"]) == 4
    for entry in result["grid"]:
        assert 0 < entry["efficiency_ratio"] <= 1.0
    perfect = [e for e in result["grid"] if e["packing_efficiency"] == 1.0]
    assert all(e["efficiency_ratio"] == pytest.approx(1.0) for e in perfect)


@pytest.fixture(scope="module")
def sec72_result():
    return sec72.run()


def test_sec72_measures_packed_models(sec72_result):
    """sec7.2 now measures 1/c off real PackedModels instead of only
    tabulating assumed values."""
    measured = sec72_result["measured"]
    assert set(measured) == {"lenet5", "resnet20"}
    from repro.hardware.optimality import ratio_from_packing_efficiency

    for network, entry in measured.items():
        assert 0.0 < entry["packing_efficiency"] <= 1.0
        assert entry["efficiency_ratio"] == pytest.approx(
            ratio_from_packing_efficiency(entry["packing_efficiency"], entry["r"]))
        assert entry["total_nonzeros"] > 0
    assert measured["lenet5"]["r"] == 0.06
    assert measured["resnet20"]["r"] == 0.1


def test_sec72_workers_four_equals_workers_one(sec72_result):
    assert sec72.run(workers=4) == sec72_result


def test_sec72_engines_agree(sec72_result):
    reference = sec72.run(grouping_engine="reference", prune_engine="reference")
    assert reference == sec72_result


def test_sec72_measured_section_can_be_skipped():
    result = sec72.run(include_measured=False)
    assert result["measured"] == {}


# -- grouping-policy ablation --------------------------------------------------------------------------

def test_ablation_grouping_compares_all_policies():
    result = ablation_grouping.run(network="lenet5", seed=0)
    assert set(result["policies"]) == {"dense-first", "first-fit", "random"}
    for values in result["policies"].values():
        assert values["total_combined_columns"] <= values["total_original_columns"]
        assert 0 < values["mean_packing_efficiency"] <= 1.0


# -- shared formatting helper ------------------------------------------------------------------------------

def test_format_table_aligns_columns():
    text = format_table(["name", "value"], [("a", 1.0), ("long-name", 123456.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) == len(lines[0]) or True for line in lines)
