"""Tests for the shift / ReLU blocks and cross-layer pipelining model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Shift2d
from repro.systolic import LayerLatency, ReluQuantBlock, ShiftBlock
from repro.systolic.blocks import data_matrix_to_activations
from repro.systolic.pipeline import (
    layer_latency,
    pipeline_latency,
    pipeline_speedup,
    sequential_latency,
)
from repro.systolic.timing import CellTiming


# -- shift block -------------------------------------------------------------------

def test_shift_block_matches_network_shift_layer(rng):
    channels = 7
    block = ShiftBlock(channels)
    layer = Shift2d(channels)
    activations = rng.normal(size=(3, channels, 6, 6))
    np.testing.assert_allclose(block.apply(activations), layer.forward(activations))


def test_shift_block_to_data_matrix_roundtrip(rng):
    block = ShiftBlock(4)
    activations = rng.normal(size=(2, 4, 5, 5))
    data_matrix = block.to_data_matrix(activations)
    assert data_matrix.shape == (4, 2 * 25)
    restored = data_matrix_to_activations(data_matrix, 2, 5, 5)
    np.testing.assert_allclose(restored, block.apply(activations))


def test_shift_block_validates_channels(rng):
    block = ShiftBlock(3)
    with pytest.raises(ValueError):
        block.apply(rng.normal(size=(1, 4, 5, 5)))
    with pytest.raises(ValueError):
        ShiftBlock(0)


def test_data_matrix_to_activations_validates_width(rng):
    with pytest.raises(ValueError):
        data_matrix_to_activations(rng.normal(size=(3, 10)), 2, 2, 2)


# -- ReLU + quantization block ----------------------------------------------------------

def test_relu_quant_block_zeroes_negatives_and_quantizes(rng):
    block = ReluQuantBlock(output_bits=8)
    accumulations = np.array([[-5.0, 3.0], [10.0, -1.0]])
    quantized, quantizer = block.apply(accumulations)
    assert np.all(quantized >= 0)
    assert quantized[0, 0] == 0 and quantized[1, 1] == 0
    assert quantized.max() == 127
    np.testing.assert_allclose(quantizer.dequantize(quantized),
                               np.maximum(accumulations, 0), atol=quantizer.scale / 2)


def test_relu_quant_block_with_fixed_scale():
    block = ReluQuantBlock(output_bits=8)
    quantized, quantizer = block.apply(np.array([[1.0]]), scale=0.5)
    assert quantizer.scale == 0.5
    assert quantized[0, 0] == 2


# -- cross-layer pipelining ----------------------------------------------------------------

def test_layer_latency_components():
    timing = CellTiming()
    latency = layer_latency("layer", rows=96, cols=17, spatial_size=32, timing=timing)
    assert latency.first_output_cycles == 8 + 16
    assert latency.stream_cycles == 1024 * 8
    assert latency.tail_cycles == 95 + 32
    assert latency.completion_cycles == (96 + 17 - 2) + 8192 + 32


def test_sequential_latency_is_sum_of_completions():
    layers = [
        LayerLatency("a", first_output_cycles=10, stream_cycles=100, tail_cycles=5,
                     completion_cycles=120),
        LayerLatency("b", first_output_cycles=20, stream_cycles=200, tail_cycles=6,
                     completion_cycles=230),
    ]
    assert sequential_latency(layers) == 350


def test_pipeline_latency_is_fills_plus_bottleneck_plus_tail():
    layers = [
        LayerLatency("a", first_output_cycles=10, stream_cycles=100, tail_cycles=5,
                     completion_cycles=120),
        LayerLatency("b", first_output_cycles=20, stream_cycles=300, tail_cycles=6,
                     completion_cycles=330),
    ]
    assert pipeline_latency(layers) == 10 + 20 + 300 + 6


def test_pipeline_never_slower_than_bottleneck_and_faster_than_sequential():
    layers = [layer_latency(f"l{i}", rows=64, cols=16, spatial_size=16) for i in range(6)]
    pipelined = pipeline_latency(layers)
    sequential = sequential_latency(layers)
    bottleneck = max(l.stream_cycles for l in layers)
    assert bottleneck < pipelined < sequential
    assert pipeline_speedup(layers) > 1.0


def test_deeper_networks_benefit_more_from_pipelining():
    shallow = [layer_latency(f"l{i}", 32, 8, 16) for i in range(3)]
    deep = [layer_latency(f"l{i}", 32, 8, 16) for i in range(20)]
    assert pipeline_speedup(deep) > pipeline_speedup(shallow)


def test_empty_pipeline_latency_is_zero():
    assert pipeline_latency([]) == 0
    assert pipeline_speedup([]) == 1.0


def test_single_layer_pipeline_equals_its_own_cost():
    layer = layer_latency("only", 16, 4, 8)
    assert pipeline_latency([layer]) <= layer.completion_cycles + layer.first_output_cycles
    assert sequential_latency([layer]) == layer.completion_cycles
