"""Differential tests for the QuantizedPackedModel subsystem.

The central promises:

* at 8 bits the quantized integer forward agrees with the exact packed
  forward on >= 95% of top-1 predictions (the documented serving
  tolerance for seeded LeNet-5);
* per-layer quantized outputs are **bit-identical** across ``workers=1``
  vs ``workers=4`` packing and across every grouping x prune engine
  combination — the quantized path inherits the packing determinism
  guarantees;
* calibration freezes the quantizers: inference never refits on the data
  it serves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    MAX_BITS,
    MIN_BITS,
    PRUNE_ENGINES,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    QuantizedPackedModel,
)
from repro.models import build_model
from repro.quant import LinearQuantizer
from repro.systolic.array import ArrayConfig
from repro.systolic.system import SystolicSystem

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]

#: The documented 8-bit serving tolerance of the acceptance criteria.
AGREEMENT_TOLERANCE = 0.95


def make_model(name: str = "lenet5", seed: int = 3, density: float = 0.5):
    """A small sparsified model whose packed logits stay nonzero."""
    rng = np.random.default_rng(seed)
    kwargs = dict(num_classes=10, rng=rng)
    if name == "lenet5":
        model = build_model(name, in_channels=1, scale=1.0, image_size=8, **kwargs)
    else:
        model = build_model(name, in_channels=3, scale=0.25, **kwargs)
    mask_rng = np.random.default_rng(seed + 1)
    for _, layer in model.packable_layers():
        weights = layer.weight.data
        weights *= mask_rng.random(weights.shape) < density
    return model


def make_batch(model_name: str = "lenet5", batch: int = 64,
               seed: int = 9) -> np.ndarray:
    channels = 1 if model_name == "lenet5" else 3
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, channels, 8, 8))


def make_quantized(bits: int = 8, grouping_engine: str = "fast",
                   prune_engine: str = "fast", model_name: str = "lenet5",
                   **kwargs) -> QuantizedPackedModel:
    model = make_model(model_name)
    return QuantizedPackedModel.from_model(
        model, PipelineConfig(alpha=8, gamma=0.5,
                              grouping_engine=grouping_engine,
                              prune_engine=prune_engine),
        bits=bits, **kwargs)


# -- the 8-bit serving tolerance -----------------------------------------------------

def test_8bit_forward_matches_exact_top1_within_documented_tolerance():
    quantized = make_quantized(bits=8)
    quantized.calibrate(make_batch(seed=5, batch=32))
    batch = make_batch(batch=64)
    assert quantized.prediction_agreement(batch) >= AGREEMENT_TOLERANCE
    # The integer path genuinely quantizes: outputs differ from the exact
    # forward, but only by quantization noise.
    outputs = quantized.forward(batch)
    exact = quantized.packed.forward(batch)
    assert np.any(exact)  # the comparison is not vacuous
    assert not np.array_equal(outputs, exact)
    assert float(np.sqrt(np.mean((outputs - exact) ** 2))) < 0.01


def test_divergence_shrinks_as_bits_grow():
    batch = make_batch(batch=32)
    calibration = make_batch(seed=5, batch=32)
    rmse = {}
    for bits in (2, 4, 8):
        quantized = make_quantized(bits=bits)
        quantized.calibrate(calibration)
        outputs = quantized.forward(batch)
        exact = quantized.packed.forward(batch)
        rmse[bits] = float(np.sqrt(np.mean((outputs - exact) ** 2)))
    assert rmse[8] < rmse[4] < rmse[2]


# -- determinism: workers and engines ------------------------------------------------

def test_per_layer_outputs_bit_identical_across_workers():
    model = make_model()
    batch = make_batch(batch=16)
    calibration = make_batch(seed=5, batch=16)
    outputs = []
    for workers in (1, 4):
        config = PipelineConfig(alpha=8, gamma=0.5, workers=workers)
        with PackingPipeline(config) as pipeline:
            quantized = QuantizedPackedModel.from_model(model,
                                                        pipeline=pipeline)
        quantized.calibrate(calibration)
        final = quantized.forward(batch, capture_layer_outputs=True)
        outputs.append((final, quantized.layer_outputs()))
    (serial_final, serial_layers), (parallel_final, parallel_layers) = outputs
    np.testing.assert_array_equal(serial_final, parallel_final)
    assert serial_layers.keys() == parallel_layers.keys()
    for name in serial_layers:
        np.testing.assert_array_equal(serial_layers[name],
                                      parallel_layers[name])


def test_per_layer_outputs_bit_identical_across_engines():
    batch = make_batch(batch=16)
    calibration = make_batch(seed=5, batch=16)
    reference: dict[str, np.ndarray] | None = None
    for grouping_engine, prune_engine in ENGINE_COMBOS:
        quantized = make_quantized(grouping_engine=grouping_engine,
                                   prune_engine=prune_engine)
        quantized.calibrate(calibration)
        quantized.forward(batch, capture_layer_outputs=True)
        layers = quantized.layer_outputs()
        if reference is None:
            reference = layers
            continue
        assert layers.keys() == reference.keys()
        for name in layers:
            np.testing.assert_array_equal(layers[name], reference[name])


def test_repeated_forwards_are_bit_identical():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5))
    batch = make_batch(batch=8)
    np.testing.assert_array_equal(quantized.forward(batch),
                                  quantized.forward(batch))


# -- calibration ---------------------------------------------------------------------

def test_forward_requires_calibration():
    quantized = make_quantized()
    with pytest.raises(RuntimeError, match="calibrate"):
        quantized.forward(make_batch(batch=4))
    with pytest.raises(RuntimeError, match="calibrate"):
        quantized.layer_calibrations()


def test_calibration_freezes_quantizers_across_forwards():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    scales = [(c.input_quantizer.scale, c.weight_quantizer.scale)
              for c in quantized.layer_calibrations()]
    # Forwards over very differently scaled data must not refit anything.
    quantized.forward(make_batch(seed=6, batch=8) * 100.0)
    quantized.forward(make_batch(seed=7, batch=8) * 0.01)
    assert [(c.input_quantizer.scale, c.weight_quantizer.scale)
            for c in quantized.layer_calibrations()] == scales


def test_calibration_is_deterministic():
    first = make_quantized().calibrate(make_batch(seed=5))
    second = make_quantized().calibrate(make_batch(seed=5))
    for a, b in zip(first.layer_calibrations(), second.layer_calibrations()):
        assert a.input_quantizer.scale == b.input_quantizer.scale
        assert a.weight_quantizer.scale == b.weight_quantizer.scale


def test_recalibration_replaces_the_frozen_scales():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    before = [c.input_quantizer.scale for c in quantized.layer_calibrations()]
    quantized.calibrate(make_batch(seed=5, batch=16) * 10.0)
    after = [c.input_quantizer.scale for c in quantized.layer_calibrations()]
    assert all(b != a for b, a in zip(before, after))


def test_percentile_calibration_saturates_outlier_activations():
    quantized = make_quantized(calibration="percentile", percentile=90.0)
    calibration = make_batch(seed=5, batch=32)
    quantized.calibrate(calibration)
    quantized.forward(calibration)
    reports = quantized.layer_report()
    # The first layer sees the raw (heavy-tailed normal) images: with a
    # 90th-percentile scale a nontrivial tail must clip.
    assert reports[0].input_saturation > 0.01
    max_fit = make_quantized().calibrate(calibration)
    assert (quantized.layer_calibrations()[0].input_quantizer.scale
            < max_fit.layer_calibrations()[0].input_quantizer.scale)


# -- construction / validation -------------------------------------------------------

def test_bits_outside_supported_range_are_rejected():
    for bits in (MIN_BITS - 1, MAX_BITS + 1):
        with pytest.raises(ValueError, match="bits"):
            make_quantized(bits=bits)


def test_rejects_model_free_packed_model():
    model = make_model()
    with PackingPipeline(PipelineConfig()) as pipeline:
        result = pipeline.run([(name, layer.weight.data)
                               for name, layer in model.packable_layers()])
    packed = PackedModel.from_pipeline_result(result)  # no model attached
    with pytest.raises(ValueError, match="model-backed"):
        QuantizedPackedModel(packed)


def test_rejects_array_config_bit_width_mismatch():
    model = make_model()
    packed = PackedModel.from_model(model, PipelineConfig())
    with pytest.raises(ValueError, match="input_bits"):
        QuantizedPackedModel(packed, bits=4,
                             array_config=ArrayConfig(input_bits=8, alpha=8))
    with pytest.raises(ValueError, match="calibration"):
        QuantizedPackedModel(packed, calibration="entropy")


def test_from_pipeline_result_matches_from_model():
    model = make_model()
    calibration = make_batch(seed=5, batch=16)
    batch = make_batch(batch=8)
    direct = QuantizedPackedModel.from_model(model, PipelineConfig())
    with PackingPipeline(PipelineConfig()) as pipeline:
        result = pipeline.run([(name, layer.weight.data)
                               for name, layer in model.packable_layers()])
    assembled = QuantizedPackedModel.from_pipeline_result(result, model)
    np.testing.assert_array_equal(
        direct.calibrate(calibration).forward(batch),
        assembled.calibrate(calibration).forward(batch))


def test_forward_validates_shape_and_batch_size():
    quantized = make_quantized()
    quantized.calibrate(make_batch(batch=8))
    with pytest.raises(ValueError):
        quantized.forward(make_batch(batch=4)[0])
    with pytest.raises(ValueError):
        quantized.forward(make_batch(batch=4), batch_size=0)


def test_chunked_forward_is_numerically_equivalent():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5))
    batch = make_batch(batch=7)
    whole = quantized.forward(batch)
    chunked = quantized.forward(batch, batch_size=3)
    assert chunked.shape == whole.shape
    np.testing.assert_allclose(chunked, whole, rtol=1e-10, atol=1e-12)


# -- per-layer reports and accounting ------------------------------------------------

def test_layer_report_requires_a_forward():
    quantized = make_quantized()
    quantized.calibrate(make_batch(batch=8))
    with pytest.raises(RuntimeError, match="forward"):
        quantized.layer_report()


def test_layer_report_carries_error_and_execution_accounting():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    quantized.forward(make_batch(batch=16))
    reports = quantized.layer_report()
    assert [r.name for r in reports] == quantized.layer_names()
    for report in reports:
        assert report.bits == 8
        assert report.weight_rmse >= 0.0
        assert report.input_rmse > 0.0
        assert 0.0 <= report.input_saturation <= 1.0
        assert 0.0 <= report.weight_saturation <= 1.0
        assert report.divergence_rmse > 0.0
        assert report.divergence_max >= report.divergence_rmse
        assert report.num_tiles >= 1
        assert report.cycles > 0


def test_layer_report_accumulates_across_chunks():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    batch = make_batch(batch=8)
    quantized.forward(batch)
    unchunked = quantized.layer_report()
    quantized.forward(batch, batch_size=2)
    chunked = quantized.layer_report()
    for one, many in zip(unchunked, chunked):
        # 4 chunks re-load the weights 4 times: strictly more cycles.
        assert many.cycles > one.cycles
        assert many.num_tiles == 4 * one.num_tiles
        assert many.divergence_rmse == pytest.approx(one.divergence_rmse,
                                                     rel=1e-9)


def test_lower_bit_widths_plan_fewer_cycles():
    calibration = make_batch(seed=5, batch=8)
    batch = make_batch(batch=8)
    cycles = {}
    for bits in (2, 8):
        quantized = make_quantized(bits=bits)
        quantized.calibrate(calibration)
        quantized.forward(batch)
        cycles[bits] = quantized.plan().total_cycles
    assert cycles[2] < cycles[8]


def test_summary_reports_quantized_totals():
    quantized = make_quantized()
    bare = quantized.summary()
    assert bare["bits"] == 8 and bare["calibrated"] is False
    assert "quantized_cycles" not in bare
    quantized.calibrate(make_batch(seed=5, batch=16))
    quantized.forward(make_batch(batch=16))
    summary = quantized.summary(quantized.plan())
    reports = quantized.layer_report()
    assert summary["calibrated"] is True
    assert summary["quantized_tiles"] == sum(r.num_tiles for r in reports)
    assert summary["quantized_cycles"] == sum(r.cycles for r in reports)
    assert summary["divergence_rmse"] > 0.0
    assert summary["num_layers"] == quantized.num_layers
    assert summary["total_cycles"] > 0


def test_untracked_forward_skips_error_shadow_but_not_execution_stats():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    batch = make_batch(batch=16)
    tracked = quantized.forward(batch)
    tracked_reports = quantized.layer_report()
    untracked = quantized.forward(batch, track_errors=False)
    untracked_reports = quantized.layer_report()
    # The quantized outputs are bit-identical either way ...
    np.testing.assert_array_equal(untracked, tracked)
    for fast, full in zip(untracked_reports, tracked_reports):
        # ... execution accounting is still collected ...
        assert fast.cycles == full.cycles
        assert fast.num_tiles == full.num_tiles
        assert fast.input_saturation == full.input_saturation
        # ... and only the error columns are marked unavailable.
        assert np.isnan(fast.divergence_rmse) and np.isnan(fast.input_rmse)
        assert np.isnan(fast.divergence_max)
        assert not np.isnan(full.divergence_rmse)
    assert np.isnan(quantized.summary()["divergence_rmse"])


def test_predict_uses_the_untracked_serving_path():
    quantized = make_quantized()
    quantized.calibrate(make_batch(seed=5, batch=16))
    batch = make_batch(batch=8)
    labels = quantized.predict(batch)
    np.testing.assert_array_equal(labels, np.argmax(quantized.forward(batch),
                                                    axis=1))
    quantized.predict(batch)
    assert np.isnan(quantized.layer_report()[0].divergence_rmse)


def test_layer_outputs_requires_capture():
    quantized = make_quantized()
    quantized.calibrate(make_batch(batch=8))
    quantized.forward(make_batch(batch=4))
    with pytest.raises(RuntimeError, match="capture"):
        quantized.layer_outputs()


# -- model restoration ----------------------------------------------------------------

def test_quantized_forward_restores_model_state():
    model = make_model()
    saved = {name: layer.weight.data.copy()
             for name, layer in model.packable_layers()}
    model.train()
    quantized = QuantizedPackedModel.from_model(model, PipelineConfig())
    quantized.calibrate(make_batch(batch=8))
    quantized.forward(make_batch(batch=4))
    for name, layer in model.packable_layers():
        np.testing.assert_array_equal(layer.weight.data, saved[name])
        assert "forward" not in layer.__dict__
    assert all(module.training for module in model.modules())


def test_quantized_forward_restores_state_when_a_layer_raises():
    model = make_model()
    quantized = QuantizedPackedModel.from_model(model, PipelineConfig())
    quantized.calibrate(make_batch(batch=8))
    with pytest.raises(ValueError):
        quantized.forward(np.zeros((2, 3, 8, 8)))  # wrong channel count
    for _, layer in model.packable_layers():
        assert "forward" not in layer.__dict__


# -- SystolicSystem integration -------------------------------------------------------

def test_run_layer_prefit_quantizers_match_refit_when_equal(rng):
    model = make_model()
    packed = PackedModel.from_model(model, PipelineConfig()).specs[0].packed
    system = SystolicSystem(ArrayConfig(alpha=8))
    activations = rng.normal(size=(2, packed.original_shape[1], 4, 4))
    refit_output, refit_info = system.run_layer(packed, activations)
    prefit_output, prefit_info = system.run_layer(
        packed, activations,
        input_quantizer=refit_info["input_quantizer"],
        weight_quantizer=refit_info["weight_quantizer"])
    np.testing.assert_array_equal(prefit_output, refit_output)
    assert prefit_info["input_saturation"] == refit_info["input_saturation"]


def test_run_layer_rejects_quantizer_bit_width_mismatch(rng):
    model = make_model()
    packed = PackedModel.from_model(model, PipelineConfig()).specs[0].packed
    system = SystolicSystem(ArrayConfig(alpha=8, input_bits=8))
    activations = rng.normal(size=(1, packed.original_shape[1], 4, 4))
    with pytest.raises(ValueError, match="8-bit"):
        system.run_layer(packed, activations,
                         input_quantizer=LinearQuantizer(bits=4, scale=1.0))


def test_requantize_hook_rectifies_and_requantizes(rng):
    system = SystolicSystem(ArrayConfig(input_bits=8))
    accumulations = rng.normal(size=(6, 10)) * 1000.0
    outputs, quantizer = system.requantize(accumulations)
    assert outputs.min() >= 0  # ReLU: negatives became zero
    assert outputs.max() <= quantizer.qmax
    assert quantizer.bits == 8
    rectified = np.maximum(accumulations, 0.0)
    np.testing.assert_array_equal(outputs, quantizer.quantize(rectified))
    # A frozen scale is honoured instead of refitting.
    reused, frozen = system.requantize(accumulations, scale=quantizer.scale)
    assert frozen.scale == quantizer.scale
    np.testing.assert_array_equal(reused, outputs)
