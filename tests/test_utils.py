"""Tests for seeding, run configuration, and logging utilities."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils import RunConfig, get_logger, new_rng, seed_everything
from repro.utils.seeding import global_seed


def test_seed_everything_makes_numpy_deterministic():
    seed_everything(42)
    a = np.random.rand(5)
    seed_everything(42)
    b = np.random.rand(5)
    np.testing.assert_array_equal(a, b)


def test_seed_everything_returns_generator_and_records_seed():
    generator = seed_everything(7)
    assert isinstance(generator, np.random.Generator)
    assert global_seed() == 7


def test_seed_everything_rejects_negative_seed():
    with pytest.raises(ValueError):
        seed_everything(-1)


def test_new_rng_with_explicit_seed_is_deterministic():
    a = new_rng(3).random(4)
    b = new_rng(3).random(4)
    np.testing.assert_array_equal(a, b)


def test_new_rng_defaults_to_global_seed():
    seed_everything(11)
    a = new_rng().random(3)
    b = np.random.default_rng(11).random(3)
    np.testing.assert_array_equal(a, b)


def test_get_logger_namespaces_under_repro():
    logger = get_logger("something")
    assert logger.name == "repro.something"
    assert isinstance(logger, logging.Logger)


def test_get_logger_does_not_duplicate_handlers():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1


def test_run_config_roundtrips_through_dict():
    config = RunConfig(seed=3, train_samples=100)
    data = config.to_dict()
    assert data["seed"] == 3
    rebuilt = RunConfig(**data)
    assert rebuilt == config


def test_run_config_scaled_overrides_selected_fields():
    config = RunConfig()
    scaled = config.scaled(model_scale=2.0, epochs_per_round=7)
    assert scaled.model_scale == 2.0
    assert scaled.epochs_per_round == 7
    assert scaled.train_samples == config.train_samples
    assert config.model_scale != 2.0
