"""Observability threaded through the serving stack: profiled forwards
stay bit-identical, histograms merge exactly across process-backend
workers, flush reasons are counted, traces are bounded, and the server's
stats / snapshot / Prometheus surfaces agree with each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import save_packed
from repro.combining.serialization import load_plan
from repro.obs import merge_snapshots, summarize_histogram_state
from repro.serving import (
    DynamicBatcher,
    FLUSH_REASONS,
    InferenceServer,
    ModelRegistry,
)
from tests.test_serving import (
    MODEL_SPEC,
    build_packed,
    build_quantized,
    direct_forward,
    request_stream,
)


@pytest.fixture(scope="module")
def packed():
    return build_packed()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, packed):
    path = tmp_path_factory.mktemp("obs") / "lenet5.packed.npz"
    save_packed(packed, path, model_spec=MODEL_SPEC, compress=False)
    return path


@pytest.fixture(scope="module")
def quantized_artifact(tmp_path_factory, packed):
    path = tmp_path_factory.mktemp("obs") / "lenet5.int8.npz"
    save_packed(build_quantized(packed), path, model_spec=MODEL_SPEC,
                compress=False)
    return path


# -- profiled forward is bit-identical ---------------------------------------
@pytest.mark.parametrize("mode", ["exact", "mx"])
@pytest.mark.parametrize("kernel", ["blocked", "loops"])
def test_profiled_plan_forward_is_bit_identical(artifact, mode, kernel):
    """Profiling wraps each packed layer op in perf-counter reads and
    nothing else, so the profiled forward must return the exact bits of
    the unprofiled one — per mode, per kernel."""
    plan = load_plan(artifact)
    batch = np.random.default_rng(0).normal(size=(5, 1, 8, 8))
    plain = plan.forward(batch, mode=mode, batch_invariant=True,
                         kernel=kernel)
    profile: dict[str, int] = {}
    profiled = plan.forward(batch, mode=mode, batch_invariant=True,
                            kernel=kernel, profile=profile)
    assert np.array_equal(plain, profiled)
    assert profile, "profiling recorded no layers"
    assert all(isinstance(ns, int) and ns > 0 for ns in profile.values())


def test_profiled_quantized_plan_forward_is_bit_identical(quantized_artifact):
    plan = load_plan(quantized_artifact)
    batch = np.random.default_rng(1).normal(size=(4, 1, 8, 8))
    plain = plan.forward(batch, mode="quantized", batch_invariant=True)
    profile: dict[str, int] = {}
    profiled = plan.forward(batch, mode="quantized", batch_invariant=True,
                            profile=profile)
    assert np.array_equal(plain, profiled)
    assert profile


SERVER_CELLS = [
    pytest.param(backend, workers, kernel,
                 marks=() if backend == "thread" else pytest.mark.slow,
                 id=f"{backend}-w{workers}-{kernel}")
    for backend in ("thread", "process")
    for workers in (1, 2, 4)
    for kernel in ("blocked", "loops")
]


@pytest.mark.parametrize("backend,workers,kernel", SERVER_CELLS)
def test_observed_serving_is_bit_identical_to_direct(packed, artifact,
                                                     backend, workers,
                                                     kernel):
    """Tracing + per-layer profiling on, across every backend x workers
    x kernel cell: responses must still be bit-identical to the direct
    batch-invariant forward of each request alone."""
    registry = ModelRegistry()
    if backend == "process":
        registry.register("m", path=artifact, mode="exact")
    else:
        registry.add("m", packed)
    requests = request_stream(10, seed=21)
    with InferenceServer(registry, max_batch=8, max_wait=0.002,
                         workers=workers, backend=backend, kernel=kernel,
                         profile=True, trace_capacity=32) as server:
        outputs = [server.infer("m", request) for request in requests]
        stats = server.stats()
        profile = server.layer_profile()
    for request, output in zip(requests, outputs):
        assert np.array_equal(output,
                              direct_forward(packed, "exact", request,
                                             kernel=kernel))
    assert stats["totals"]["requests"] == len(requests)
    assert profile["m"], "profiling recorded no layers"
    assert stats["traces"]["recorded"] == len(requests)


# -- exact merge across worker processes --------------------------------------
@pytest.mark.slow
def test_worker_histograms_merge_exactly_across_processes(artifact):
    """Process-backend workers each accumulate their own registries; the
    server-side merge must account for every profiled batch exactly
    (counts add as integers) and be independent of merge order."""
    registry = ModelRegistry()
    registry.register("m", path=artifact, mode="exact")
    requests = request_stream(16, seed=3)
    with InferenceServer(registry, max_batch=4, max_wait=0.001, workers=2,
                         backend="process", profile=True) as server:
        for request in requests:
            server.infer("m", request)
        stats = server.stats()
        snapshot = server.metrics_snapshot()
        worker_snapshots = list(server._worker_snapshots.values())
        own = server._metrics.snapshot()
        prometheus = server.prometheus_text()

    batches = stats["totals"]["batches"]
    assert snapshot["counters"]['serving_profiled_batches{model="m"}'] \
        == batches
    forward = snapshot["histograms"]['serving_forward_seconds{model="m"}']
    assert forward["count"] == batches
    assert summarize_histogram_state(forward)["count"] == batches
    # Per-layer counts: every profiled batch timed every packed layer.
    layer_states = [state for key, state in snapshot["histograms"].items()
                    if key.startswith("serving_layer_seconds")]
    assert layer_states
    assert all(state["count"] == batches for state in layer_states)
    # Merge order cannot matter: integer state everywhere.
    reordered = merge_snapshots([*reversed(worker_snapshots), own])
    forward_reordered = \
        reordered["histograms"]['serving_forward_seconds{model="m"}']
    assert forward_reordered == forward
    assert f'serving_forward_seconds_count{{model="m"}} {batches}' \
        in prometheus.splitlines()


# -- flush reasons ------------------------------------------------------------
def test_batcher_counts_flush_reasons():
    batcher = DynamicBatcher(max_batch=4, max_wait=0.01)
    sample = np.zeros((1, 1, 4, 4))
    for _ in range(4):
        batcher.submit("m", sample)
    full = batcher.next_batch(timeout=1.0)
    assert full.flush_reason == "max_batch"

    batcher.submit("m", sample)
    aged = batcher.next_batch(timeout=1.0)  # waits out max_wait
    assert aged.flush_reason == "max_wait"

    batcher.submit("m", sample)
    batcher.close()
    drained = batcher.next_batch(timeout=1.0)
    assert drained.flush_reason == "drain"

    counts = batcher.flush_reasons
    assert counts == {"max_batch": 1, "max_wait": 1, "drain": 1}
    assert set(counts) == set(FLUSH_REASONS)


def test_server_stats_carry_flush_reasons(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    requests = request_stream(6, seed=9, max_request=1)
    with InferenceServer(registry, max_batch=2, max_wait=0.001) as server:
        for request in requests:
            server.infer("m", request)
        stats = server.stats()
    flush = stats["totals"]["flush_reasons"]
    assert set(flush) == set(FLUSH_REASONS)
    assert sum(flush.values()) == stats["totals"]["batches"]


# -- stats totals latency aggregates ------------------------------------------
def test_stats_totals_aggregate_latency_across_models(packed, artifact):
    """The bug this PR fixes: totals previously had no queued/service
    aggregates at all.  They must now be the exact merge of the
    per-model histograms."""
    registry = ModelRegistry()
    registry.add("a", packed)
    registry.add("b", packed)
    with InferenceServer(registry, max_batch=4, max_wait=0.001) as server:
        for index, request in enumerate(request_stream(10, seed=2)):
            server.infer("a" if index % 2 else "b", request)
        stats = server.stats()
    totals = stats["totals"]
    for section in ("queued_seconds", "service_seconds"):
        digest = totals[section]
        assert set(digest) == {"count", "mean", "min", "max",
                               "p50", "p90", "p99"}
        per_model = [stats["per_model"][name][section] for name in ("a", "b")]
        assert digest["count"] == sum(entry["count"] for entry in per_model)
        assert digest["max"] == max(entry["max"] for entry in per_model)
        assert digest["min"] == min(entry["min"] for entry in per_model)
        # Exact merge: the nanosecond-integer means recombine exactly.
        merged_sum = sum(entry["mean"] * entry["count"]
                        for entry in per_model)
        assert digest["mean"] * digest["count"] \
            == pytest.approx(merged_sum, rel=1e-12)
        assert digest["p50"] <= digest["p90"] <= digest["p99"] <= digest["max"]
    assert totals["service_seconds"]["max"] > 0.0


# -- tracing through the server -----------------------------------------------
def test_trace_ring_bounds_memory_under_sustained_load(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    total = 60
    with InferenceServer(registry, max_batch=4, max_wait=0.0005,
                         trace_capacity=8) as server:
        for request in request_stream(total, seed=4, max_request=1):
            server.infer("m", request)
        traces = server.traces()
        stats = server.stats()
    assert stats["traces"]["capacity"] == 8
    assert stats["traces"]["recorded"] == total
    assert stats["traces"]["retained"] == 8
    assert stats["traces"]["dropped"] == total - 8
    assert len(traces) == 8


def test_traces_record_span_timeline_and_flush_reason(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         profile=True, trace_capacity=16) as server:
        pending = [server.submit("m", request)
                   for request in request_stream(4, seed=6, max_request=1)]
        trace_ids = [request.trace_id for request in pending]
        for request in pending:
            request.result(timeout=30.0)
        traces = server.traces()
    assert all(trace_id is not None for trace_id in trace_ids)
    assert {trace["trace_id"] for trace in traces} == set(trace_ids)
    for trace in traces:
        spans = {span["name"]: span for span in trace["spans"]}
        assert list(spans) == ["enqueue", "coalesce", "forward", "respond"]
        assert spans["coalesce"]["attributes"]["flush_reason"] \
            in FLUSH_REASONS
        forward = spans["forward"]["attributes"]
        assert forward["backend"] == "thread"
        assert forward["kernel"] == "blocked"
        assert forward["layer_ns"], "profiled trace carries layer timings"
        assert spans["respond"]["attributes"]["failed"] is False
        # Timeline is contiguous: enqueue/coalesce end at dispatch,
        # forward starts there, respond follows forward.
        assert spans["enqueue"]["end"] == spans["coalesce"]["end"] \
            == spans["forward"]["start"]
        assert spans["forward"]["end"] == spans["respond"]["start"]


def test_trace_capacity_zero_disables_tracing(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         trace_capacity=0) as server:
        for request in request_stream(4, seed=8, max_request=1):
            server.infer("m", request)
        assert server.traces() == []
        assert server.stats()["traces"]["retained"] == 0


def test_failed_batches_trace_the_error(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    bad = np.zeros((1, 1, 3, 3))  # wrong spatial size -> forward raises
    with InferenceServer(registry, max_batch=2, max_wait=0.0005,
                         trace_capacity=8) as server:
        request = server.submit("m", bad)
        with pytest.raises(Exception):
            request.result(timeout=30.0)
        traces = server.traces()
        stats = server.stats()
    assert stats["totals"]["failures"] == 1
    respond = traces[-1]["spans"][-1]
    assert respond["attributes"]["failed"] is True
    assert respond["attributes"]["error"]


# -- thread-backend profiling lands in the server registry --------------------
def test_thread_profile_populates_registry_and_layer_profile(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    requests = request_stream(8, seed=13)
    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         profile=True) as server:
        for request in requests:
            server.infer("m", request)
        stats = server.stats()
        snapshot = server.metrics_snapshot()
        profile = server.layer_profile(top=1)
    batches = stats["totals"]["batches"]
    assert snapshot["counters"]['serving_profiled_batches{model="m"}'] \
        == batches
    queued = snapshot["histograms"]['serving_queued_seconds{model="m"}']
    assert queued["count"] == stats["totals"]["requests"]
    assert len(profile["m"]) == 1
    top = profile["m"][0]
    assert top["batches"] == batches
    assert top["total_seconds"] > 0.0
    assert top["mean_seconds"] == pytest.approx(top["total_seconds"]
                                                / top["batches"])


def test_unprofiled_server_records_no_layer_metrics(packed):
    registry = ModelRegistry()
    registry.add("m", packed)
    with InferenceServer(registry, max_batch=4, max_wait=0.001) as server:
        for request in request_stream(4, seed=17, max_request=1):
            server.infer("m", request)
        snapshot = server.metrics_snapshot()
        assert server.layer_profile() == {}
    assert not any(key.startswith("serving_layer_seconds")
                   for key in snapshot["histograms"])
