"""Tests for partitioned (tiled) matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import group_columns, column_combine_prune, pack_filter_matrix
from repro.systolic import ArrayConfig, TiledMatmul


def sparse(rng, rows, cols, density=0.2):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def test_dense_tiling_matches_direct_product(rng):
    matrix = sparse(rng, 96, 94)
    data = rng.normal(size=(94, 13))
    tiled = TiledMatmul(ArrayConfig(rows=32, cols=32))
    result = tiled.multiply_dense(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data)
    assert result.num_tiles == 9


def test_single_tile_when_matrix_fits(rng):
    matrix = sparse(rng, 16, 16)
    data = rng.normal(size=(16, 3))
    result = TiledMatmul(ArrayConfig(rows=32, cols=32)).multiply_dense(matrix, data)
    assert result.num_tiles == 1


def test_packed_tiling_matches_pruned_product(rng):
    matrix = sparse(rng, 96, 94, density=0.16)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    data = rng.normal(size=(94, 21))
    result = TiledMatmul(ArrayConfig(rows=32, cols=32, alpha=8)).multiply_packed(packed, data)
    np.testing.assert_allclose(result.output, pruned @ data)
    assert result.num_tiles < 9


def test_packing_reduces_tiles_and_cycles(rng):
    matrix = sparse(rng, 96, 94, density=0.16)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    data = rng.normal(size=(94, 50))
    tiled = TiledMatmul(ArrayConfig(rows=32, cols=32, alpha=8))
    dense_result = tiled.multiply_dense(matrix, data)
    packed_result = tiled.multiply_packed(packed, data)
    assert packed_result.num_tiles < dense_result.num_tiles
    assert packed_result.total_cycles < dense_result.total_cycles
    assert packed_result.utilization > dense_result.utilization


def test_weight_load_overlap_only_first_tile_exposed(rng):
    matrix = sparse(rng, 64, 64)
    data = rng.normal(size=(64, 100))
    result = TiledMatmul(ArrayConfig(rows=32, cols=32)).multiply_dense(matrix, data)
    assert result.num_tiles == 4
    expected = (result.tiles[0].weight_load_cycles + result.tiles[0].matmul_cycles
                + sum(max(t.matmul_cycles, t.weight_load_cycles) for t in result.tiles[1:]))
    assert result.total_cycles == expected


def test_tile_records_cover_whole_matrix(rng):
    matrix = sparse(rng, 50, 70)
    data = rng.normal(size=(70, 2))
    result = TiledMatmul(ArrayConfig(rows=32, cols=32)).multiply_dense(matrix, data)
    covered = np.zeros((50, 70), dtype=int)
    for tile in result.tiles:
        covered[tile.row_start:tile.row_end, tile.col_start:tile.col_end] += 1
    assert np.all(covered == 1)


def test_mismatched_data_raises(rng):
    tiled = TiledMatmul(ArrayConfig(rows=8, cols=8))
    with pytest.raises(ValueError):
        tiled.multiply_dense(np.ones((4, 4)), np.ones((5, 2)))


def test_packed_multiplexing_degree_checked(rng):
    matrix = sparse(rng, 40, 40, density=0.05)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    if packed.multiplexing_degree() <= 1:
        pytest.skip("no multiplexing occurred")
    tiled = TiledMatmul(ArrayConfig(rows=8, cols=8, alpha=1))
    with pytest.raises(ValueError):
        tiled.multiply_packed(packed, np.zeros((40, 1)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000), rows=st.integers(1, 70), cols=st.integers(1, 70))
def test_property_tiled_dense_matmul_is_exact(seed, rows, cols):
    """Tiled execution over any matrix size equals the direct product."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols))
    data = rng.normal(size=(cols, 3))
    result = TiledMatmul(ArrayConfig(rows=16, cols=16)).multiply_dense(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data, atol=1e-9)
    expected_tiles = -(-rows // 16) * (-(-cols // 16))
    assert result.num_tiles == expected_tiles
