"""Tests for Algorithm 3: column-combine pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import ColumnGrouping, column_combine_prune, group_columns
from repro.combining.pruning import conflict_mask, pruned_weight_count


def test_keeps_largest_magnitude_per_row_within_group():
    # The paper's Figure 3 blue-group example: -3 and 7 conflict with -8;
    # only -8 (largest magnitude) survives.
    matrix = np.array([[-3.0, 7.0, -8.0]])
    grouping = ColumnGrouping([[0, 1, 2]], num_columns=3, num_rows=1, alpha=8, gamma=2.0)
    pruned, keep = column_combine_prune(matrix, grouping)
    np.testing.assert_array_equal(pruned, [[0.0, 0.0, -8.0]])
    np.testing.assert_array_equal(keep, [[0.0, 0.0, 1.0]])


def test_non_conflicting_weights_are_untouched():
    matrix = np.array([
        [1.0, 0.0],
        [0.0, 2.0],
    ])
    grouping = ColumnGrouping([[0, 1]], num_columns=2, num_rows=2, alpha=8, gamma=1.0)
    pruned, _ = column_combine_prune(matrix, grouping)
    np.testing.assert_array_equal(pruned, matrix)


def test_weights_in_different_groups_never_conflict():
    matrix = np.array([[5.0, 4.0]])
    grouping = ColumnGrouping([[0], [1]], num_columns=2, num_rows=1, alpha=8, gamma=0.0)
    pruned, _ = column_combine_prune(matrix, grouping)
    np.testing.assert_array_equal(pruned, matrix)


def test_tie_breaks_toward_earlier_column_in_group():
    matrix = np.array([[2.0, -2.0]])
    grouping = ColumnGrouping([[0, 1]], num_columns=2, num_rows=1, alpha=8, gamma=1.0)
    pruned, _ = column_combine_prune(matrix, grouping)
    np.testing.assert_array_equal(pruned, [[2.0, 0.0]])


def test_rows_with_no_nonzeros_stay_empty(rng):
    matrix = np.zeros((3, 4))
    matrix[0, 0] = 1.0
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    pruned, keep = column_combine_prune(matrix, grouping)
    assert np.count_nonzero(pruned[1:]) == 0
    assert np.count_nonzero(keep[1:]) == 0


def test_conflict_mask_shape_mismatch_raises(rng):
    matrix = rng.normal(size=(4, 4))
    grouping = ColumnGrouping([[0], [1], [2]], num_columns=3, num_rows=4, alpha=8, gamma=0.5)
    with pytest.raises(ValueError):
        conflict_mask(matrix, grouping)


def test_pruned_weight_count_matches_difference(rng):
    matrix = rng.normal(size=(10, 12)) * (rng.random((10, 12)) < 0.4)
    grouping = group_columns(matrix, alpha=4, gamma=0.9)
    pruned, _ = column_combine_prune(matrix, grouping)
    expected = int(np.count_nonzero(matrix) - np.count_nonzero(pruned))
    assert pruned_weight_count(matrix, grouping) == expected


def test_original_matrix_is_not_modified(rng):
    matrix = rng.normal(size=(5, 6)) * (rng.random((5, 6)) < 0.5)
    snapshot = matrix.copy()
    grouping = group_columns(matrix, alpha=4, gamma=0.9)
    column_combine_prune(matrix, grouping)
    np.testing.assert_array_equal(matrix, snapshot)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000),
       rows=st.integers(2, 20),
       cols=st.integers(2, 20),
       density=st.floats(0.1, 0.9),
       alpha=st.integers(2, 8),
       gamma=st.floats(0.0, 1.0))
def test_property_after_pruning_each_group_row_has_at_most_one_nonzero(
        seed, rows, cols, density, alpha, gamma):
    """The defining invariant of column-combine pruning: within any group,
    every row retains at most one nonzero weight — and it is the weight of
    largest magnitude among that row's weights in the group."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    pruned, keep = column_combine_prune(matrix, grouping)
    for group in grouping.groups:
        submatrix = pruned[:, group]
        counts = np.count_nonzero(submatrix, axis=1)
        assert np.all(counts <= 1)
        original = np.abs(matrix[:, group])
        survivors = np.abs(submatrix).max(axis=1)
        has_any = original.max(axis=1) > 0
        np.testing.assert_allclose(survivors[has_any], original.max(axis=1)[has_any])
    # The keep mask is consistent with the pruned matrix.
    np.testing.assert_array_equal((pruned != 0), (keep * (matrix != 0)) != 0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), gamma=st.floats(0.0, 1.0))
def test_property_pruned_count_bounded_by_conflict_budget(seed, gamma):
    """Column-combine pruning removes at most gamma * rows weights per group."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(12, 16)) * (rng.random((12, 16)) < 0.4)
    grouping = group_columns(matrix, alpha=8, gamma=gamma)
    budget = gamma * matrix.shape[0]
    for group in grouping.groups:
        removed = (np.count_nonzero(matrix[:, group])
                   - np.count_nonzero(column_combine_prune(matrix, grouping)[0][:, group]))
        assert removed <= budget + 1e-9
