"""Tests for the PackingPipeline subsystem and its layer-parallel fan-out.

The pipeline promises that ``workers=N`` returns exactly the results of
the serial ``workers=1`` run, in layer order, for every policy and engine
— including the ``"random"`` grouping policy, whose per-layer generators
are derived from ``(seed, layer_index)`` rather than shared state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    PackingPipeline,
    PipelineConfig,
    column_combine_prune,
    group_columns,
    ordered_pool_map,
    pack_filter_matrix,
    tile_count,
)
from repro.combining.pipeline import _pack_one_layer
from repro.experiments.workloads import sparse_network


def small_layers(seed: int = 0, count: int = 3):
    rng = np.random.default_rng(seed)
    layers = []
    for index in range(count):
        rows, cols = 40 + 8 * index, 36 + 4 * index
        matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < 0.2)
        layers.append((f"layer-{index}", matrix))
    return layers


def assert_results_identical(first, second):
    assert first.layer_names() == second.layer_names()
    for a, b in zip(first.layers, second.layers):
        assert a.grouping.groups == b.grouping.groups
        np.testing.assert_array_equal(a.packed.weights, b.packed.weights)
        np.testing.assert_array_equal(a.packed.channel_index, b.packed.channel_index)
        assert (a.tiles_before, a.tiles_after) == (b.tiles_before, b.tiles_after)


# -- config validation --------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        PipelineConfig(alpha=0)
    with pytest.raises(ValueError):
        PipelineConfig(gamma=-0.5)
    with pytest.raises(ValueError):
        PipelineConfig(policy="densest")
    with pytest.raises(ValueError):
        PipelineConfig(grouping_engine="turbo")
    with pytest.raises(ValueError):
        PipelineConfig(prune_engine="turbo")
    with pytest.raises(ValueError):
        PipelineConfig(array_rows=0)
    with pytest.raises(ValueError):
        PipelineConfig(workers=0)


def test_config_defaults_match_paper():
    config = PipelineConfig()
    assert config.alpha == 8 and config.gamma == 0.5
    assert config.workers == 1


# -- per-layer flow -----------------------------------------------------------------------

def test_layer_result_matches_direct_calls():
    name, matrix = small_layers()[0]
    result = PackingPipeline(PipelineConfig(alpha=8, gamma=0.5)).run_layer(name, matrix)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    assert result.name == name
    assert result.grouping.groups == grouping.groups
    np.testing.assert_array_equal(result.packed.weights, packed.weights)
    assert result.columns_before == matrix.shape[1]
    assert result.columns_after == grouping.num_groups
    assert result.tiles_before == tile_count(matrix.shape[0], matrix.shape[1], 32, 32)
    assert result.tiles_after == tile_count(matrix.shape[0], grouping.num_groups, 32, 32)
    assert result.density_before == pytest.approx(
        np.count_nonzero(matrix) / matrix.size)
    assert result.tile_reduction == result.tiles_before / max(1, result.tiles_after)


def test_packed_layer_round_trips_pruned_matrix():
    name, matrix = small_layers(seed=3)[1]
    result = PackingPipeline().run_layer(name, matrix)
    pruned, _ = column_combine_prune(matrix, result.grouping)
    np.testing.assert_allclose(result.packed.to_sparse(), pruned)


def test_rejects_non_2d_matrix():
    with pytest.raises(ValueError):
        PackingPipeline().run_layer("bad", np.zeros(5))


def test_run_accepts_layer_shapes_strings_and_bare_matrices():
    layers = sparse_network("lenet5", density=0.2, seed=0)
    named = small_layers()
    pipeline = PackingPipeline()
    from_shapes = pipeline.run(layers)
    assert from_shapes.layer_names() == [shape.name for shape, _ in layers]
    from_names = pipeline.run(named)
    assert from_names.layer_names() == [name for name, _ in named]
    bare = pipeline.run([matrix for _, matrix in named])
    assert bare.layer_names() == [f"layer{i}" for i in range(len(named))]


def test_result_helpers_aggregate_layers():
    result = PackingPipeline().run(small_layers())
    assert result.total_tiles_before == sum(result.tiles_before())
    assert result.total_tiles_after == sum(result.tiles_after())
    assert [name for name, _ in result.packed_layers()] == result.layer_names()
    assert result.total_tiles_after <= result.total_tiles_before


# -- serial vs parallel -------------------------------------------------------------------

def test_parallel_results_identical_to_serial():
    layers = small_layers()
    serial = PackingPipeline(PipelineConfig(workers=1)).run(layers)
    parallel = PackingPipeline(PipelineConfig(workers=3)).run(layers)
    assert_results_identical(serial, parallel)


def test_parallel_random_policy_identical_to_serial():
    layers = small_layers(seed=7)
    serial = PackingPipeline(PipelineConfig(policy="random", seed=11,
                                            workers=1)).run(layers)
    parallel = PackingPipeline(PipelineConfig(policy="random", seed=11,
                                              workers=2)).run(layers)
    assert_results_identical(serial, parallel)


def test_random_policy_depends_on_seed_not_schedule():
    layers = small_layers(seed=7)
    first = PackingPipeline(PipelineConfig(policy="random", seed=1)).run(layers)
    second = PackingPipeline(PipelineConfig(policy="random", seed=2)).run(layers)
    assert any(a.grouping.groups != b.grouping.groups
               for a, b in zip(first.layers, second.layers))


def test_reference_engines_through_pipeline_match_fast():
    layers = small_layers(seed=5)
    fast = PackingPipeline(PipelineConfig(grouping_engine="fast",
                                          prune_engine="fast")).run(layers)
    reference = PackingPipeline(PipelineConfig(grouping_engine="reference",
                                               prune_engine="reference")).run(layers)
    assert_results_identical(fast, reference)


# -- persistent worker pool ----------------------------------------------------------------

def test_persistent_pool_reused_across_runs_matches_fresh_pipelines():
    """Three run() calls on one (pool-reusing) pipeline must equal three
    runs on fresh pipelines — the pool is an optimization, never a result
    change."""
    layers = small_layers()
    with PackingPipeline(PipelineConfig(workers=2)) as pipeline:
        reused = [pipeline.run(layers) for _ in range(3)]
        assert pipeline.pool_active  # one pool served all three runs
    assert not pipeline.pool_active
    for result in reused:
        with PackingPipeline(PipelineConfig(workers=2)) as fresh:
            assert_results_identical(fresh.run(layers), result)


def test_pool_spawns_lazily_and_respawns_after_close():
    pipeline = PackingPipeline(PipelineConfig(workers=2))
    assert not pipeline.pool_active  # constructing never forks
    first = pipeline.run(small_layers())
    assert pipeline.pool_active
    pipeline.close()
    pipeline.close()  # idempotent
    assert not pipeline.pool_active
    second = pipeline.run(small_layers())  # closed pipeline keeps working
    assert pipeline.pool_active
    pipeline.close()
    assert_results_identical(first, second)


def test_serial_pipeline_never_spawns_a_pool():
    with PackingPipeline(PipelineConfig(workers=1)) as pipeline:
        pipeline.run(small_layers())
        assert not pipeline.pool_active


def test_single_layer_run_stays_in_process():
    with PackingPipeline(PipelineConfig(workers=4)) as pipeline:
        pipeline.run(small_layers(count=1))
        assert not pipeline.pool_active


def test_packed_layers_preserve_input_order_under_parallel_fanout():
    """packed_layers() documents that it preserves input layer order even
    under parallel fan-out; pin that with names whose sorted order differs
    from the input order."""
    names = ["zeta", "alpha", "mid", "omega", "beta"]
    rng = np.random.default_rng(2)
    layers = [(name, rng.normal(size=(30, 24)) * (rng.random((30, 24)) < 0.25))
              for name in names]
    serial = PackingPipeline(PipelineConfig(workers=1)).run(layers)
    with PackingPipeline(PipelineConfig(workers=4)) as pipeline:
        parallel = pipeline.run(layers)
    assert [name for name, _ in serial.packed_layers()] == names
    assert [name for name, _ in parallel.packed_layers()] == names
    for (_, a), (_, b) in zip(serial.packed_layers(), parallel.packed_layers()):
        np.testing.assert_array_equal(a.weights, b.weights)
        np.testing.assert_array_equal(a.channel_index, b.channel_index)


def test_borrowed_pool_is_shared_and_never_shut_down_by_borrowers():
    """Pipelines with different configs can borrow one executor; closing a
    borrower must leave the lender's pool alive for the others."""
    from concurrent.futures import ProcessPoolExecutor

    layers = small_layers()
    with ProcessPoolExecutor(max_workers=2) as shared:
        first = PackingPipeline(PipelineConfig(workers=2), pool=shared)
        second = PackingPipeline(PipelineConfig(alpha=4, workers=2), pool=shared)
        assert first.pool_active and second.pool_active
        first_result = first.run(layers)
        first.close()
        assert not first.pool_active
        second_result = second.run(layers)  # pool still alive after close()
        second.close()
    assert_results_identical(
        first_result, PackingPipeline(PipelineConfig(workers=1)).run(layers))
    assert_results_identical(
        second_result,
        PackingPipeline(PipelineConfig(alpha=4, workers=1)).run(layers))


def test_closed_borrower_spawns_its_own_pool_next_time():
    from concurrent.futures import ProcessPoolExecutor

    layers = small_layers()
    with ProcessPoolExecutor(max_workers=2) as shared:
        pipeline = PackingPipeline(PipelineConfig(workers=2), pool=shared)
        pipeline.close()  # detaches the borrowed pool
        result = pipeline.run(layers)  # spawns (and now owns) a fresh pool
        assert pipeline.pool_active
        pipeline.close()
    assert_results_identical(
        result, PackingPipeline(PipelineConfig(workers=1)).run(layers))


def test_layer_result_counts_nonzeros_and_pruned_weights():
    name, matrix = small_layers()[0]
    result = PackingPipeline().run_layer(name, matrix)
    assert result.nonzeros_before == int(np.count_nonzero(matrix))
    assert result.nonzeros_after == int(np.count_nonzero(result.packed.weights))
    assert result.pruned_weights == result.nonzeros_before - result.nonzeros_after
    assert result.pruned_weights >= 0


# -- ordered_pool_map ---------------------------------------------------------------------

def test_ordered_pool_map_serial_path_preserves_order():
    assert ordered_pool_map(abs, [-3, 1, -2], workers=1) == [3, 1, 2]


def test_ordered_pool_map_serial_path_runs_initializer():
    installed: list[int] = []
    result = ordered_pool_map(abs, [-4, 4], workers=1,
                              initializer=installed.append, initargs=(7,))
    assert result == [4, 4]
    assert installed == [7]


def test_ordered_pool_map_parallel_preserves_order():
    tasks = [(PipelineConfig(), f"m{i}", matrix, i)
             for i, (_, matrix) in enumerate(small_layers())]
    serial = ordered_pool_map(_pack_one_layer, tasks, workers=1)
    parallel = ordered_pool_map(_pack_one_layer, tasks, workers=3)
    assert [r.name for r in serial] == [r.name for r in parallel] == ["m0", "m1", "m2"]
    for a, b in zip(serial, parallel):
        assert a.grouping.groups == b.grouping.groups


def test_ordered_pool_map_lent_pool_is_not_shut_down():
    from concurrent.futures import ProcessPoolExecutor

    tasks = [(PipelineConfig(), f"m{i}", matrix, i)
             for i, (_, matrix) in enumerate(small_layers())]
    with ProcessPoolExecutor(max_workers=2) as pool:
        first = ordered_pool_map(_pack_one_layer, tasks, workers=2, pool=pool)
        # The pool must survive the call so the owner can reuse it.
        second = ordered_pool_map(_pack_one_layer, tasks, workers=2, pool=pool)
    assert [r.name for r in first] == [r.name for r in second]
    for a, b in zip(first, second):
        assert a.grouping.groups == b.grouping.groups
