"""Differential tests: the fast conflict-pruning engine against the reference loop.

The fast scatter engine promises *bit-identical* keep masks — same row
winners, same tie-breaks (toward the earliest column in each group's
order), same handling of all-zero rows — for every matrix and grouping.
These tests sweep seeded random matrices across the parameter grid,
deliberately include magnitude ties (integer-valued matrices) so the
tie-break path is exercised, and assert exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import (
    PRUNE_ENGINES,
    ColumnGrouping,
    column_combine_prune,
    conflict_mask,
    group_columns,
    group_layout,
    pruned_weight_count,
)
from repro.combining.bitset import group_occupancy, pack_columns, unpack_rows

ALPHAS = (1, 2, 8, 16)
GAMMAS = (0.0, 0.5, 2.0)


def seeded_matrix(seed: int, rows: int = 28, cols: int = 36,
                  density: float = 0.2, ties: bool = False) -> np.ndarray:
    """Sparse test matrix; ``ties=True`` quantizes magnitudes to force ties."""
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    if ties:
        values = rng.integers(-3, 4, size=(rows, cols)).astype(np.float64)
    else:
        values = rng.normal(size=(rows, cols))
    return values * mask


def assert_prune_engines_identical(matrix: np.ndarray,
                                   grouping: ColumnGrouping) -> None:
    fast = conflict_mask(matrix, grouping, engine="fast")
    reference = conflict_mask(matrix, grouping, engine="reference")
    np.testing.assert_array_equal(fast, reference)


# -- bitset substrate ---------------------------------------------------------------------

def test_unpack_rows_inverts_pack_columns(rng):
    mask = rng.random((70, 9)) < 0.3
    bits = pack_columns(mask)
    np.testing.assert_array_equal(unpack_rows(bits, 70), mask.T)


def test_unpack_rows_validates_arguments():
    bits = pack_columns(np.ones((4, 2), dtype=bool))
    with pytest.raises(ValueError):
        unpack_rows(bits, -1)
    with pytest.raises(ValueError):
        unpack_rows(bits, 65)  # one word holds at most 64 rows


def test_group_occupancy_ors_member_columns(rng):
    mask = rng.random((130, 12)) < 0.25
    bits = pack_columns(mask)
    groups = [[3, 0, 7], [1, 2], [11, 5, 4, 10], [6], [8, 9]]
    member_columns = np.concatenate([np.asarray(g) for g in groups])
    starts = np.cumsum([0] + [len(g) for g in groups[:-1]])
    occupancy = group_occupancy(bits, member_columns, starts)
    assert occupancy.shape == (len(groups), bits.shape[1])
    for index, group in enumerate(groups):
        expected = mask[:, group].any(axis=1)
        np.testing.assert_array_equal(unpack_rows(occupancy[index], 130), expected)


def test_group_occupancy_empty_grouping():
    bits = pack_columns(np.ones((4, 2), dtype=bool))
    occupancy = group_occupancy(bits, np.array([], dtype=int),
                                np.array([], dtype=int))
    assert occupancy.shape == (0, bits.shape[1])


def test_keep_mask_occupancy_matches_bitset_occupancy():
    """Cross-check: a (row, group) cell keeps a weight iff the group's
    occupancy bitset has that row's bit set, for both engines."""
    matrix = seeded_matrix(8, rows=90, cols=48, density=0.3, ties=True)
    grouping = group_columns(matrix, alpha=8, gamma=1.0)
    flat_columns, assignment, _ = group_layout(grouping)
    starts = np.cumsum([0] + [len(g) for g in grouping.groups[:-1]])
    occupancy = group_occupancy(pack_columns(matrix != 0), flat_columns, starts)
    occupied = unpack_rows(occupancy, matrix.shape[0])      # (G, N)
    for engine in PRUNE_ENGINES:
        keep = conflict_mask(matrix, grouping, engine=engine) != 0
        kept_cells = np.zeros_like(occupied)
        rows, columns = np.nonzero(keep)
        kept_cells[assignment[columns], rows] = True
        np.testing.assert_array_equal(kept_cells, occupied)


def test_group_layout_round_trips_grouping():
    grouping = ColumnGrouping([[3, 0], [2], [4, 1]], num_columns=5, num_rows=2,
                              alpha=8, gamma=1.0)
    flat_columns, assignment, position = group_layout(grouping)
    np.testing.assert_array_equal(flat_columns, [3, 0, 2, 4, 1])
    np.testing.assert_array_equal(assignment, [0, 2, 1, 0, 2])
    np.testing.assert_array_equal(position, [1, 1, 0, 0, 0])


# -- engine selection ---------------------------------------------------------------------

def test_prune_engine_names_exported():
    assert set(PRUNE_ENGINES) == {"fast", "reference"}


def test_unknown_prune_engine_raises():
    matrix = seeded_matrix(0)
    grouping = group_columns(matrix)
    with pytest.raises(ValueError):
        conflict_mask(matrix, grouping, engine="turbo")
    with pytest.raises(ValueError):
        column_combine_prune(matrix, grouping, engine="turbo")


def test_column_combine_prune_threads_engine():
    matrix = seeded_matrix(1, ties=True)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    pruned_fast, keep_fast = column_combine_prune(matrix, grouping, engine="fast")
    pruned_ref, keep_ref = column_combine_prune(matrix, grouping, engine="reference")
    np.testing.assert_array_equal(pruned_fast, pruned_ref)
    np.testing.assert_array_equal(keep_fast, keep_ref)


def test_pruned_weight_count_threads_engine():
    matrix = seeded_matrix(2, density=0.4)
    grouping = group_columns(matrix, alpha=4, gamma=0.9)
    assert (pruned_weight_count(matrix, grouping, engine="fast")
            == pruned_weight_count(matrix, grouping, engine="reference"))


# -- differential sweep -------------------------------------------------------------------

@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("gamma", GAMMAS)
def test_engines_identical_across_alpha_gamma(alpha, gamma):
    for seed, density in ((0, 0.1), (1, 0.25), (2, 0.5)):
        matrix = seeded_matrix(seed, density=density)
        grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
        assert_prune_engines_identical(matrix, grouping)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_engines_identical_with_magnitude_ties(alpha):
    """Integer-valued matrices hit the tie-break path on nearly every row."""
    for seed in range(4):
        matrix = seeded_matrix(seed, density=0.5, ties=True)
        grouping = group_columns(matrix, alpha=alpha, gamma=1.0)
        assert_prune_engines_identical(matrix, grouping)


def test_tie_breaks_toward_earliest_column_in_group_order():
    # The group lists column 1 before column 0, so the tie must resolve to
    # column 1 — group *order*, not ascending column index.
    matrix = np.array([[2.0, -2.0]])
    grouping = ColumnGrouping([[1, 0]], num_columns=2, num_rows=1, alpha=8,
                              gamma=1.0)
    for engine in PRUNE_ENGINES:
        keep = conflict_mask(matrix, grouping, engine=engine)
        np.testing.assert_array_equal(keep, [[0.0, 1.0]])


def test_engines_identical_with_all_zero_rows():
    matrix = seeded_matrix(3, rows=20, cols=30, density=0.3)
    matrix[[0, 7, 19], :] = 0.0
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    assert_prune_engines_identical(matrix, grouping)
    keep = conflict_mask(matrix, grouping, engine="fast")
    assert np.count_nonzero(keep[[0, 7, 19], :]) == 0


def test_engines_identical_with_singleton_groups():
    matrix = seeded_matrix(4, density=0.4)
    grouping = group_columns(matrix, alpha=1, gamma=0.0)
    assert all(len(group) == 1 for group in grouping.groups)
    assert_prune_engines_identical(matrix, grouping)
    # Singleton groups never prune anything.
    keep = conflict_mask(matrix, grouping, engine="fast")
    np.testing.assert_array_equal(keep != 0, matrix != 0)


def test_engines_identical_on_all_zero_matrix():
    matrix = np.zeros((12, 9))
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    assert_prune_engines_identical(matrix, grouping)


def test_engines_identical_on_zero_row_matrix():
    matrix = np.zeros((0, 11))
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    assert_prune_engines_identical(matrix, grouping)


def test_engines_identical_on_empty_matrix():
    matrix = np.zeros((4, 0))
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    for engine in PRUNE_ENGINES:
        assert conflict_mask(matrix, grouping, engine=engine).shape == (4, 0)


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_engines_identical_with_nan_weights():
    """A NaN magnitude poisons its (row, group) cell: the reference loop
    keeps nothing from that cell (NaN > 0 is false), and the fast engine
    must do the same rather than keeping every entry."""
    matrix = np.array([[1.0, np.nan, 2.0],
                       [3.0, 1.0, 0.0]])
    grouping = ColumnGrouping([[0, 1, 2]], num_columns=3, num_rows=2, alpha=8,
                              gamma=2.0)
    assert_prune_engines_identical(matrix, grouping)
    keep = conflict_mask(matrix, grouping, engine="fast")
    np.testing.assert_array_equal(keep[0], [0.0, 0.0, 0.0])  # poisoned cell
    np.testing.assert_array_equal(keep[1], [1.0, 0.0, 0.0])  # unaffected row


def test_engines_identical_on_many_rows():
    # More than 64 rows exercises multi-word bitsets in the grouping that
    # feeds the prune step.
    matrix = seeded_matrix(5, rows=150, cols=80, density=0.15)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    assert_prune_engines_identical(matrix, grouping)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000),
       rows=st.integers(1, 70),
       cols=st.integers(1, 40),
       density=st.floats(0.0, 1.0),
       alpha=st.sampled_from(ALPHAS),
       gamma=st.sampled_from(GAMMAS),
       ties=st.booleans())
def test_property_engines_bit_identical(seed, rows, cols, density, alpha, gamma,
                                        ties):
    matrix = seeded_matrix(seed, rows=rows, cols=cols, density=density, ties=ties)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    fast = conflict_mask(matrix, grouping, engine="fast")
    reference = conflict_mask(matrix, grouping, engine="reference")
    np.testing.assert_array_equal(fast, reference)
    # Invariants: only existing nonzeros are kept, at most one per
    # (row, group) cell, and a row keeps something from every group it
    # holds a weight in.
    assert np.all((fast == 0) | (matrix != 0))
    for group in grouping.groups:
        kept = np.count_nonzero(fast[:, group], axis=1)
        has_weight = (matrix[:, group] != 0).any(axis=1)
        np.testing.assert_array_equal(kept, has_weight.astype(int))
