"""Tests for the full-size workload generators used by the structural experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.workloads import (
    PAPER_DENSITY,
    lenet5_layer_shapes,
    resnet20_layer_shapes,
    sparse_filter_matrix,
    sparse_network,
    vgg_layer_shapes,
)


def test_lenet_shapes_match_classic_architecture():
    shapes = lenet5_layer_shapes(image_size=32)
    assert [s.name for s in shapes] == ["conv1", "conv2", "fc1", "fc2", "fc3"]
    assert shapes[0].rows == 6 and shapes[0].cols == 25
    assert shapes[1].rows == 16 and shapes[1].cols == 150
    assert shapes[2].cols == 16 * 5 * 5  # the classic 400-input fc1
    total_weights = sum(s.rows * s.cols for s in shapes)
    assert 55_000 < total_weights < 70_000  # ~61.5K, the classic LeNet-5 size


def test_resnet20_has_twenty_layers_and_matches_fig14b_example():
    shapes = resnet20_layer_shapes(width_multiplier=6)
    assert len(shapes) == 20
    # The paper's Figure 14b example layer is a 96-row first-stage layer.
    assert shapes[2].rows == 96
    # Stage transitions double the width and halve the spatial size; the
    # last weight layer is the 10-way classifier.
    assert shapes[-2].rows == 384 and shapes[-2].spatial == 8
    assert shapes[-1].name == "fc" and shapes[-1].rows == 10
    assert shapes[0].spatial == 32


def test_vgg_shapes_grow_in_width_and_shrink_in_space():
    shapes = vgg_layer_shapes(image_size=32)
    assert shapes[0].cols == 3
    widths = [s.rows for s in shapes]
    assert widths == sorted(widths)
    assert shapes[-1].spatial < shapes[0].spatial


def test_sparse_filter_matrix_density_and_row_coverage(rng):
    matrix = sparse_filter_matrix(100, 80, density=0.15, rng=rng)
    density = np.count_nonzero(matrix) / matrix.size
    assert 0.10 < density < 0.20
    # Every row keeps at least one nonzero.
    assert np.all(np.count_nonzero(matrix, axis=1) >= 1)


def test_sparse_filter_matrix_validation(rng):
    with pytest.raises(ValueError):
        sparse_filter_matrix(4, 4, density=0.0, rng=rng)
    with pytest.raises(ValueError):
        sparse_filter_matrix(4, 4, density=1.5, rng=rng)


def test_sparse_network_returns_shape_matrix_pairs():
    layers = sparse_network("resnet20", density=0.16, seed=0, width_multiplier=6)
    assert len(layers) == 20
    for shape, matrix in layers:
        assert matrix.shape == (shape.rows, shape.cols)


def test_sparse_network_is_deterministic_per_seed():
    a = sparse_network("lenet5", density=0.13, seed=1)
    b = sparse_network("lenet5", density=0.13, seed=1)
    for (_, matrix_a), (_, matrix_b) in zip(a, b):
        np.testing.assert_array_equal(matrix_a, matrix_b)


def test_sparse_network_unknown_name_raises():
    with pytest.raises(KeyError):
        sparse_network("alexnet")


def test_paper_density_covers_all_networks():
    assert set(PAPER_DENSITY) == {"lenet5", "resnet20", "vgg"}
    assert all(0 < d < 1 for d in PAPER_DENSITY.values())
