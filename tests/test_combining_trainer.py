"""Integration tests for Algorithm 1 (the iterative joint-optimization trainer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    ColumnCombineConfig,
    ColumnCombineTrainer,
    count_conflicts,
)
from repro.combining.trainer import train_dense
from repro.models import LeNet5, ResNet20


def tiny_config(**overrides):
    defaults = dict(alpha=4, beta=0.25, gamma=0.5, target_fraction=0.4,
                    epochs_per_round=1, final_epochs=1, max_rounds=3,
                    lr=0.1, batch_size=32, seed=0)
    defaults.update(overrides)
    return ColumnCombineConfig(**defaults)


@pytest.fixture
def lenet_trainer(tiny_mnist):
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=np.random.default_rng(0))
    return ColumnCombineTrainer(model, train, test, tiny_config())


def test_config_validation():
    with pytest.raises(ValueError):
        ColumnCombineConfig(alpha=0)
    with pytest.raises(ValueError):
        ColumnCombineConfig(beta=1.5)
    with pytest.raises(ValueError):
        ColumnCombineConfig(gamma=-0.1)
    with pytest.raises(ValueError):
        ColumnCombineConfig(target_fraction=0.0)
    with pytest.raises(ValueError):
        ColumnCombineConfig(max_rounds=0)
    with pytest.raises(ValueError):
        ColumnCombineConfig(target_nonzeros=0)
    with pytest.raises(ValueError):
        ColumnCombineConfig(epochs_per_round=-1)
    with pytest.raises(ValueError):
        ColumnCombineConfig(final_epochs=-1)
    with pytest.raises(ValueError):
        ColumnCombineConfig(grouping_engine="turbo")
    with pytest.raises(ValueError):
        ColumnCombineConfig(prune_engine="turbo")


def test_target_nonzeros_overrides_unused_target_fraction():
    # An absolute target must not be rejected over the fraction it overrides.
    config = ColumnCombineConfig(target_nonzeros=17, target_fraction=0.0)
    assert config.target_nonzeros == 17


def test_config_accepts_both_engines():
    assert ColumnCombineConfig(grouping_engine="fast").grouping_engine == "fast"
    assert ColumnCombineConfig(grouping_engine="reference").grouping_engine == "reference"
    assert ColumnCombineConfig(prune_engine="fast").prune_engine == "fast"
    assert ColumnCombineConfig(prune_engine="reference").prune_engine == "reference"


def test_trainer_requires_packable_layers(tiny_mnist):
    train, test = tiny_mnist
    with pytest.raises(TypeError):
        ColumnCombineTrainer(object(), train, test, tiny_config())


def test_target_nonzeros_derived_from_fraction(lenet_trainer):
    expected = max(1, int(0.4 * lenet_trainer.initial_nonzeros))
    assert lenet_trainer.target_nonzeros == expected


def test_explicit_target_nonzeros_wins(tiny_mnist):
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=np.random.default_rng(0))
    trainer = ColumnCombineTrainer(model, train, test,
                                   tiny_config(target_nonzeros=17))
    assert trainer.target_nonzeros == 17


def test_prune_and_group_reduces_nonzeros_and_installs_masks(lenet_trainer):
    before = lenet_trainer.conv_nonzeros()
    groupings = lenet_trainer.prune_and_group(beta=0.25)
    after = lenet_trainer.conv_nonzeros()
    assert after < before
    assert set(groupings) == {name for name, _ in lenet_trainer.layers}
    for _, layer in lenet_trainer.layers:
        assert layer.weight.mask is not None


def test_prune_and_group_leaves_groups_conflict_free(lenet_trainer):
    groupings = lenet_trainer.prune_and_group(beta=0.25)
    for name, layer in lenet_trainer.layers:
        for group in groupings[name].groups:
            assert count_conflicts(layer.weight.data, group) == 0


@pytest.mark.slow  # runs real training epochs
def test_run_reaches_target_and_records_history(lenet_trainer):
    history = lenet_trainer.run()
    assert lenet_trainer.conv_nonzeros() <= lenet_trainer.target_nonzeros or \
        len(history.pruning_epochs) == lenet_trainer.config.max_rounds
    assert history.records[0].phase == "initial"
    assert history.final_nonzeros <= lenet_trainer.initial_nonzeros
    assert len(history.pruning_epochs) >= 1
    # Nonzero counts never increase over the run.
    nonzeros = history.nonzero_counts()
    assert all(a >= b for a, b in zip(nonzeros, nonzeros[1:]))


@pytest.mark.slow  # runs real training epochs
def test_retraining_recovers_accuracy_after_pruning(tiny_mnist):
    """Accuracy after the full Algorithm 1 run must recover to a level well
    above chance and above the immediately-post-pruning accuracy."""
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=np.random.default_rng(0))
    # Pretrain densely so pruning has something to destroy.
    train_dense(model, train, test, epochs=3, lr=0.05, seed=0)
    trainer = ColumnCombineTrainer(model, train, test,
                                   tiny_config(epochs_per_round=2, final_epochs=2))
    _, accuracy_before = trainer.evaluate()
    trainer.prune_and_group(beta=0.5)
    _, accuracy_after_prune = trainer.evaluate()
    history = trainer.run()
    assert history.final_accuracy >= accuracy_after_prune
    assert history.final_accuracy > 0.2  # well above 10-class chance


@pytest.mark.slow  # runs real training epochs
def test_masks_keep_pruned_weights_at_zero_through_training(lenet_trainer):
    lenet_trainer.run()
    for _, layer in lenet_trainer.layers:
        mask = layer.weight.mask
        assert mask is not None
        assert np.all(layer.weight.data[mask == 0] == 0.0)


@pytest.mark.slow  # runs real training epochs
def test_packed_layers_match_current_weights(lenet_trainer):
    lenet_trainer.run()
    packed = dict(lenet_trainer.packed_layers())
    for name, layer in lenet_trainer.layers:
        np.testing.assert_allclose(packed[name].to_sparse(), layer.weight.data)


@pytest.mark.slow  # runs real training epochs
def test_utilization_improves_over_unpacked_density(tiny_cifar):
    train, test = tiny_cifar
    model = ResNet20(in_channels=3, scale=0.5, rng=np.random.default_rng(0))
    trainer = ColumnCombineTrainer(model, train, test,
                                   tiny_config(alpha=8, target_fraction=0.25,
                                               max_rounds=4))
    trainer.run()
    total = sum(layer.weight.data.size for _, layer in trainer.layers)
    nonzeros = trainer.conv_nonzeros()
    unpacked_density = nonzeros / total
    assert trainer.utilization() > unpacked_density


@pytest.mark.slow  # runs real training epochs
def test_alpha_one_trainer_never_prunes_conflicts(tiny_mnist):
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=np.random.default_rng(0))
    trainer = ColumnCombineTrainer(model, train, test, tiny_config(alpha=1, gamma=0.0))
    trainer.run()
    for grouping in trainer.groupings.values():
        assert all(len(group) == 1 for group in grouping.groups)


@pytest.mark.slow  # runs real training epochs
def test_train_dense_improves_accuracy(tiny_mnist):
    train, test = tiny_mnist
    model = LeNet5(in_channels=1, scale=1.0, image_size=8, rng=np.random.default_rng(0))
    history = train_dense(model, train, test, epochs=3, lr=0.05, seed=0)
    assert history.final_accuracy > history.records[0].test_accuracy
    # Dense training must not prune anything.
    assert history.final_nonzeros == history.records[0].nonzeros


@pytest.mark.slow  # runs real training epochs
def test_history_helpers(lenet_trainer):
    history = lenet_trainer.run()
    assert len(history.epochs()) == len(history.records)
    assert len(history.test_accuracies()) == len(history.records)
    assert history.final_accuracy == history.records[-1].test_accuracy


def test_empty_history_raises():
    from repro.combining.trainer import TrainingHistory
    history = TrainingHistory()
    with pytest.raises(ValueError):
        _ = history.final_accuracy
    with pytest.raises(ValueError):
        _ = history.final_nonzeros
