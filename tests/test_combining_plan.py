"""Immutable execution plans: differential bit-identity vs the legacy path.

The contract under test (the foundation the lock-free serving layer and
the process backend stand on): ``compile_plan(packed_model)`` produces a
read-only, picklable plan whose ``forward`` is **bit-identical** to the
legacy install-state-into-the-module-graph path for every architecture,
forward mode, batch-invariance setting, and grouping x prune engine
combination — and compiling / running a plan never perturbs the source
model.  ``load_plan`` must reproduce the same bits straight from a V2
artifact (mmap or not) and from V1 artifacts via the
assemble-then-compile fallback.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    PRUNE_ENGINES,
    ExecutionPlan,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    QuantizedPackedModel,
    compile_plan,
    load_plan,
    save_packed,
)
from repro.experiments.workloads import sparse_network
from repro.models import build_model

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]

MODELS = {
    "lenet5": {"kwargs": {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                          "image_size": 8},
               "sample_shape": (1, 8, 8)},
    "vgg": {"kwargs": {"in_channels": 3, "num_classes": 10, "scale": 0.25},
            "sample_shape": (3, 8, 8)},
    "resnet20": {"kwargs": {"in_channels": 3, "num_classes": 10,
                            "scale": 0.25},
                 "sample_shape": (3, 8, 8)},
}


def build_packed(name: str, grouping_engine: str = "fast",
                 prune_engine: str = "fast") -> PackedModel:
    model = build_model(name, rng=np.random.default_rng(3),
                        **MODELS[name]["kwargs"])
    mask_rng = np.random.default_rng(4)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    config = PipelineConfig(alpha=8, gamma=0.5,
                            grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    return PackedModel.from_model(model, config)


def images_for(name: str, count: int = 6) -> np.ndarray:
    return np.random.default_rng(11).normal(
        size=(count, *MODELS[name]["sample_shape"]))


@pytest.fixture(scope="module")
def packed_lenet5() -> PackedModel:
    return build_packed("lenet5")


@pytest.fixture(scope="module")
def quantized_lenet5(packed_lenet5: PackedModel) -> QuantizedPackedModel:
    quantized = QuantizedPackedModel(packed_lenet5, bits=8)
    quantized.calibrate(np.random.default_rng(7).normal(size=(16, 1, 8, 8)))
    return quantized


def assert_plan_matches_legacy(packed: PackedModel, images: np.ndarray
                               ) -> ExecutionPlan:
    plan = packed.compile_plan()
    for mode in ("exact", "mx"):
        for batch_invariant in (False, True):
            legacy = packed.forward(images, mode=mode,
                                    batch_invariant=batch_invariant)
            planned = plan.forward(images, mode=mode,
                                   batch_invariant=batch_invariant)
            assert np.array_equal(legacy, planned), (
                f"plan diverged from legacy forward "
                f"(mode={mode}, batch_invariant={batch_invariant})")
    return plan


# -- differential bit-identity -----------------------------------------------
@pytest.mark.parametrize("name", list(MODELS))
def test_plan_matches_legacy_forward_per_architecture(name):
    packed = build_packed(name)
    assert_plan_matches_legacy(packed, images_for(name))


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_plan_matches_legacy_across_engines(grouping_engine, prune_engine):
    packed = build_packed("lenet5", grouping_engine, prune_engine)
    assert_plan_matches_legacy(packed, images_for("lenet5"))


def test_quantized_plan_matches_legacy_forward(quantized_lenet5):
    images = images_for("lenet5")
    plan = quantized_lenet5.compile_plan()
    assert plan.bits == 8
    assert "quantized" in plan.modes
    for batch_invariant in (False, True):
        legacy = quantized_lenet5.forward(images, track_errors=False,
                                          batch_invariant=batch_invariant)
        planned = plan.forward(images, mode="quantized",
                               batch_invariant=batch_invariant)
        assert np.array_equal(legacy, planned)


def test_plan_predict_matches_legacy(packed_lenet5):
    images = images_for("lenet5")
    plan = packed_lenet5.compile_plan()
    assert np.array_equal(plan.predict(images), packed_lenet5.predict(images))
    single = plan.predict(images[2])
    assert np.ndim(single) == 0 and single == packed_lenet5.predict(images[2])


# -- the plan is inert: picklable, read-only, source-preserving --------------
def test_plan_pickle_round_trip_is_bit_identical(packed_lenet5,
                                                 quantized_lenet5):
    images = images_for("lenet5")
    for source, kwargs in [(packed_lenet5.compile_plan(), {"mode": "exact"}),
                           (quantized_lenet5.compile_plan(),
                            {"mode": "quantized"})]:
        clone = pickle.loads(pickle.dumps(source))
        assert np.array_equal(
            source.forward(images, batch_invariant=True, **kwargs),
            clone.forward(images, batch_invariant=True, **kwargs))


def test_compile_and_run_leave_the_source_model_untouched(packed_lenet5):
    images = images_for("lenet5")
    before = packed_lenet5.forward(images)
    plan = packed_lenet5.compile_plan()
    plan.forward(images)
    plan.forward(images, mode="mx", batch_invariant=True)
    assert np.array_equal(packed_lenet5.forward(images), before)
    assert all("forward" not in vars(module)
               for module in packed_lenet5.model.modules())


def test_plan_arrays_are_read_only(packed_lenet5):
    plan = packed_lenet5.compile_plan()
    op = plan.packed_ops[0]
    with pytest.raises((ValueError, RuntimeError)):
        op.packed.weights[0, 0] = 1.0
    with pytest.raises((ValueError, RuntimeError)):
        op.packed.channel_index[0, 0] = 0


def test_concurrent_plan_forwards_are_bit_identical(packed_lenet5):
    import threading

    images = images_for("lenet5", count=4)
    plan = packed_lenet5.compile_plan()
    expected = plan.forward(images, batch_invariant=True)
    results: list = []
    lock = threading.Lock()

    def run() -> None:
        for _ in range(5):
            out = plan.forward(images, batch_invariant=True)
            with lock:
                results.append(out)

    threads = [threading.Thread(target=run) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 20
    assert all(np.array_equal(out, expected) for out in results)


# -- systolic accounting ------------------------------------------------------
def test_plan_execution_plan_matches_legacy_cycles(quantized_lenet5):
    images = images_for("lenet5", count=5)
    quantized_lenet5.forward(images, track_errors=False)
    legacy = quantized_lenet5.plan(batch=5)

    plan = quantized_lenet5.compile_plan()
    observed: dict = {}
    plan.forward(images, mode="quantized", observed=observed)
    planned = plan.execution_plan(observed=observed, batch=5)
    assert planned.total_cycles == legacy.total_cycles
    assert planned.total_tiles == legacy.total_tiles


def test_plan_execution_plan_needs_spatial_sizes(packed_lenet5):
    plan = packed_lenet5.compile_plan()
    with pytest.raises(RuntimeError, match="no spatial sizes available"):
        plan.execution_plan()


# -- validation ---------------------------------------------------------------
def test_compile_plan_requires_an_nn_model():
    layers = sparse_network("lenet5", density=0.13, seed=0)
    with PackingPipeline(PipelineConfig(alpha=8, gamma=0.5)) as pipeline:
        matrix_only = PackedModel.from_pipeline_result(pipeline.run(layers))
    with pytest.raises(RuntimeError, match="without an nn model"):
        compile_plan(matrix_only)


def test_float_plan_rejects_quantized_mode(packed_lenet5):
    plan = packed_lenet5.compile_plan()
    assert plan.modes == ("exact", "mx")
    with pytest.raises(ValueError, match="unknown forward mode"):
        plan.forward(images_for("lenet5"), mode="quantized")
    with pytest.raises(ValueError, match="unknown forward mode"):
        plan.forward(images_for("lenet5"), mode="warp")


# -- artifacts straight to plans ---------------------------------------------
@pytest.mark.parametrize("mmap", [False, True, "auto"])
def test_load_plan_from_v2_artifact_is_bit_identical(tmp_path, packed_lenet5,
                                                     mmap):
    images = images_for("lenet5")
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec={"name": "lenet5",
                                   "kwargs": MODELS["lenet5"]["kwargs"]},
                       compress=False)
    plan = load_plan(path, mmap=mmap)
    assert isinstance(plan, ExecutionPlan)
    for mode in ("exact", "mx"):
        for batch_invariant in (False, True):
            assert np.array_equal(
                plan.forward(images, mode=mode,
                             batch_invariant=batch_invariant),
                packed_lenet5.forward(images, mode=mode,
                                      batch_invariant=batch_invariant))


def test_load_plan_quantized_v2_artifact(tmp_path, quantized_lenet5):
    images = images_for("lenet5")
    path = save_packed(quantized_lenet5, tmp_path / "lenet5.int8.npz",
                       model_spec={"name": "lenet5",
                                   "kwargs": MODELS["lenet5"]["kwargs"]},
                       compress=False)
    plan = load_plan(path, mmap=True)
    assert plan.bits == 8
    assert np.array_equal(
        plan.forward(images, mode="quantized", batch_invariant=True),
        quantized_lenet5.forward(images, track_errors=False,
                                 batch_invariant=True))


def test_load_plan_v1_artifact_compiles_through_the_model(tmp_path,
                                                          packed_lenet5):
    """V1 artifacts predate plan manifests: load_plan reconstructs the nn
    model and compiles, landing on the same bits."""
    images = images_for("lenet5")
    path = save_packed(packed_lenet5, tmp_path / "lenet5.v1.npz",
                       model_spec={"name": "lenet5",
                                   "kwargs": MODELS["lenet5"]["kwargs"]},
                       format_version=1)
    plan = load_plan(path)
    assert np.array_equal(plan.forward(images, batch_invariant=True),
                          packed_lenet5.forward(images, batch_invariant=True))


def test_load_plan_rejects_matrix_only_artifacts(tmp_path):
    layers = sparse_network("lenet5", density=0.13, seed=0)
    with PackingPipeline(PipelineConfig(alpha=8, gamma=0.5)) as pipeline:
        matrix_only = PackedModel.from_pipeline_result(pipeline.run(layers))
    path = save_packed(matrix_only, tmp_path / "matrices.npz")
    with pytest.raises(ValueError, match="no nn model"):
        load_plan(path)
