"""Differential tests for the PackedModel batched-inference subsystem.

The central promise: ``PackedModel.forward`` (exact mode) is **bit-identical**
to the dense reference forward — the same model with the conflict-pruned
weights installed — on LeNet / VGG slices, for every combination of the
grouping and pruning engines, including empty-group and zero-row edge
cases.  The ``"mx"`` mode (true MX-cell routing: gather by channel index,
sum across groups) matches the same reference up to float summation order.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    PRUNE_ENGINES,
    PackedLayerSpec,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
)
from repro.models import build_model
from repro.nn import Module, PointwiseConv2d

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]


def make_model(name: str, seed: int = 3) -> Module:
    """A small LeNet / VGG slice with sparsified packable weights."""
    rng = np.random.default_rng(seed)
    kwargs = dict(num_classes=10, rng=rng)
    if name == "lenet5":
        model = build_model(name, in_channels=1, scale=1.0, image_size=8, **kwargs)
    else:
        model = build_model(name, in_channels=3, scale=0.25, **kwargs)
    mask_rng = np.random.default_rng(seed + 1)
    for _, layer in model.packable_layers():
        weights = layer.weight.data
        weights *= mask_rng.random(weights.shape) < 0.3
    return model


def make_batch(model_name: str, batch: int = 4, seed: int = 9) -> np.ndarray:
    channels = 1 if model_name == "lenet5" else 3
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, channels, 8, 8))


def dense_reference(model: Module, packed: PackedModel) -> Module:
    """The dense model holding the pruned weights the packing represents."""
    reference = copy.deepcopy(model)
    for (_, layer), (_, sparse) in zip(reference.packable_layers(),
                                       packed.to_sparse()):
        layer.weight.data = sparse
    reference.eval()
    return reference


# -- bit-exact differential suite ---------------------------------------------------

@pytest.mark.parametrize("model_name", ["lenet5", "vgg"])
@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_exact_forward_bit_identical_to_dense_reference(model_name,
                                                        grouping_engine,
                                                        prune_engine):
    model = make_model(model_name)
    packed = PackedModel.from_model(model, PipelineConfig(
        alpha=8, gamma=0.5, grouping_engine=grouping_engine,
        prune_engine=prune_engine))
    batch = make_batch(model_name)
    expected = dense_reference(model, packed).forward(batch)
    np.testing.assert_array_equal(packed.forward(batch), expected)


@pytest.mark.parametrize("model_name", ["lenet5", "vgg"])
def test_engine_combos_produce_bit_identical_forwards(model_name):
    model = make_model(model_name)
    batch = make_batch(model_name)
    outputs = []
    for grouping_engine, prune_engine in ENGINE_COMBOS:
        packed = PackedModel.from_model(model, PipelineConfig(
            alpha=8, gamma=0.5, grouping_engine=grouping_engine,
            prune_engine=prune_engine))
        outputs.append(packed.forward(batch))
    for other in outputs[1:]:
        np.testing.assert_array_equal(outputs[0], other)


@pytest.mark.parametrize("model_name", ["lenet5", "vgg"])
def test_mx_forward_matches_dense_reference_numerically(model_name):
    model = make_model(model_name)
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    batch = make_batch(model_name)
    expected = dense_reference(model, packed).forward(batch)
    np.testing.assert_allclose(packed.forward(batch, mode="mx"), expected,
                               rtol=1e-10, atol=1e-12)


def test_alpha_one_baseline_reproduces_the_unpruned_model():
    """α=1 / γ=0 groups every column alone: nothing is pruned, so the packed
    forward must equal the original model's eval-mode forward bit-for-bit."""
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig(alpha=1, gamma=0.0))
    batch = make_batch("lenet5")
    original = copy.deepcopy(model).eval()
    np.testing.assert_array_equal(packed.forward(batch), original.forward(batch))


# -- edge cases: zero rows, zero columns, empty groups ------------------------------

def edge_case_model() -> Module:
    """A LeNet slice whose first packable layer has zero rows and columns.

    Zeroed rows (dead filters) pack into all-empty packed rows; zeroed
    columns (dead input channels) leave their group's cells empty — the
    empty-group case when a whole group's columns are zero.
    """
    model = make_model("lenet5")
    name, layer = model.packable_layers()[0]
    weights = layer.weight.data
    weights[0, :] = 0.0           # dead filter -> all-empty packed row
    weights[:, :4] = 0.0          # dead channels -> empty cells / groups
    return model


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_zero_row_and_empty_group_edge_cases(grouping_engine, prune_engine):
    model = edge_case_model()
    packed = PackedModel.from_model(model, PipelineConfig(
        alpha=8, gamma=0.5, grouping_engine=grouping_engine,
        prune_engine=prune_engine))
    batch = make_batch("lenet5")
    expected = dense_reference(model, packed).forward(batch)
    np.testing.assert_array_equal(packed.forward(batch), expected)
    np.testing.assert_allclose(packed.forward(batch, mode="mx"), expected,
                               rtol=1e-10, atol=1e-12)


def test_mx_mode_handles_bias_modules():
    class BiasedModel(Module):
        def __init__(self):
            super().__init__()
            self.pointwise = PointwiseConv2d(6, 5, bias=True,
                                             rng=np.random.default_rng(0))
            self.pointwise.bias.data[:] = np.arange(5, dtype=np.float64)

        def forward(self, x):
            return self.pointwise.forward(x)

        def packable_layers(self):
            return [("pointwise", self.pointwise)]

    model = BiasedModel()
    model.pointwise.weight.data *= np.random.default_rng(1).random((5, 6)) < 0.5
    packed = PackedModel.from_model(model, PipelineConfig(alpha=4, gamma=0.5))
    batch = np.random.default_rng(2).normal(size=(3, 6, 2, 2))
    expected = dense_reference(model, packed).forward(batch)
    np.testing.assert_array_equal(packed.forward(batch), expected)
    np.testing.assert_allclose(packed.forward(batch, mode="mx"), expected,
                               rtol=1e-10, atol=1e-12)


# -- batching ------------------------------------------------------------------------

def test_chunked_forward_is_numerically_equivalent():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    batch = make_batch("lenet5", batch=7)
    whole = packed.forward(batch)
    chunked = packed.forward(batch, batch_size=3)
    assert chunked.shape == whole.shape
    np.testing.assert_allclose(chunked, whole, rtol=1e-10, atol=1e-12)
    # A chunk size covering the batch takes the single-chunk path: bit-equal.
    np.testing.assert_array_equal(packed.forward(batch, batch_size=7), whole)


def test_predict_returns_argmax_labels():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    batch = make_batch("lenet5", batch=5)
    labels = packed.predict(batch)
    np.testing.assert_array_equal(labels, np.argmax(packed.forward(batch), axis=1))


# -- model restoration ----------------------------------------------------------------

def test_forward_restores_weights_training_flags_and_methods():
    model = make_model("lenet5")
    saved = {name: layer.weight.data.copy()
             for name, layer in model.packable_layers()}
    model.train()
    packed = PackedModel.from_model(model, PipelineConfig())
    packed.forward(make_batch("lenet5"))
    packed.forward(make_batch("lenet5"), mode="mx")
    for name, layer in model.packable_layers():
        np.testing.assert_array_equal(layer.weight.data, saved[name])
        assert "forward" not in layer.__dict__
    assert all(module.training for module in model.modules())


def test_forward_preserves_pending_backward_caches():
    """A mid-training packed evaluation must not clobber the activation
    caches a pending ``backward`` depends on (nor retain its own)."""
    model = make_model("lenet5")
    train_batch = make_batch("lenet5", batch=2, seed=21)
    labels_grad = np.random.default_rng(22).normal(size=(2, 10))
    packed = PackedModel.from_model(model, PipelineConfig())

    model.train()
    logits = model.forward(train_batch)
    model.zero_grad()
    expected_grad = {}
    for name, layer in model.packable_layers():
        layer.weight.grad[:] = 0.0
    reference = copy.deepcopy(model)
    reference.backward(labels_grad.copy())
    for (name, layer) in reference.packable_layers():
        expected_grad[name] = layer.weight.grad.copy()

    packed.forward(make_batch("lenet5", batch=5, seed=23))  # mid-training eval
    packed.forward(make_batch("lenet5", batch=5, seed=24), mode="mx")
    model.backward(labels_grad.copy())
    for name, layer in model.packable_layers():
        np.testing.assert_array_equal(layer.weight.grad, expected_grad[name])
    assert logits.shape == (2, 10)


def test_forward_restores_state_when_a_layer_raises():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    with pytest.raises(ValueError):
        packed.forward(np.zeros((2, 3, 8, 8)))  # wrong channel count
    for _, layer in model.packable_layers():
        assert "forward" not in layer.__dict__
    assert all(module.training for module in model.modules())


# -- construction and validation -------------------------------------------------------

def test_from_pipeline_result_matches_from_model():
    model = make_model("lenet5")
    direct = PackedModel.from_model(model, PipelineConfig())
    with PackingPipeline(PipelineConfig()) as pipeline:
        result = pipeline.run([(name, layer.weight.data)
                               for name, layer in model.packable_layers()])
    assembled = PackedModel.from_pipeline_result(result, model=model)
    batch = make_batch("lenet5")
    np.testing.assert_array_equal(assembled.forward(batch), direct.forward(batch))
    assert assembled.layer_names() == direct.layer_names()


def test_from_pipeline_result_without_model_rejects_forward():
    model = make_model("lenet5")
    with PackingPipeline(PipelineConfig()) as pipeline:
        result = pipeline.run([(name, layer.weight.data)
                               for name, layer in model.packable_layers()])
    packed = PackedModel.from_pipeline_result(result)
    assert packed.num_layers == len(result.layers)
    with pytest.raises(RuntimeError):
        packed.forward(make_batch("lenet5"))


def test_from_pipeline_result_rejects_layer_count_mismatch():
    model = make_model("lenet5")
    with PackingPipeline(PipelineConfig()) as pipeline:
        result = pipeline.run([("only", model.packable_layers()[0][1].weight.data)])
    with pytest.raises(ValueError):
        PackedModel.from_pipeline_result(result, model=model)


def test_spec_rejects_shape_mismatch_with_module():
    model = make_model("lenet5")
    layers = model.packable_layers()
    (name0, module0), (_, module1) = layers[0], layers[1]
    packed = PackedModel.from_model(model, PipelineConfig()).specs[0].packed
    with pytest.raises(ValueError):
        PackedLayerSpec(name0, packed, module1)


def test_from_model_rejects_config_and_pipeline_together():
    model = make_model("lenet5")
    with PackingPipeline(PipelineConfig()) as pipeline:
        with pytest.raises(ValueError):
            PackedModel.from_model(model, config=PipelineConfig(),
                                   pipeline=pipeline)


def test_forward_validates_mode_shape_and_batch_size():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    batch = make_batch("lenet5")
    with pytest.raises(ValueError):
        packed.forward(batch, mode="turbo")
    with pytest.raises(ValueError):
        packed.forward(batch[0])
    with pytest.raises(ValueError):
        packed.forward(batch, batch_size=0)


# -- realized-matrix caching -----------------------------------------------------------

def test_realized_cache_is_hit_on_repeated_forwards(monkeypatch):
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    batch = make_batch("lenet5")
    calls = {"to_sparse": 0}
    for spec in packed.specs:
        original = spec.packed.to_sparse
        def counting(original=original):
            calls["to_sparse"] += 1
            return original()
        monkeypatch.setattr(spec.packed, "to_sparse", counting)
    first = packed.forward(batch)
    realizations = calls["to_sparse"]
    assert realizations == packed.num_layers  # one realization per layer ...
    second = packed.forward(batch)
    third = packed.forward(batch)
    assert calls["to_sparse"] == realizations  # ... and none on later forwards
    np.testing.assert_array_equal(first, second)
    np.testing.assert_array_equal(first, third)
    # The cached realization is one shared (read-only) array per spec.
    for spec in packed.specs:
        assert spec.realized() is spec.realized()
        assert not spec.realized().flags.writeable


def test_realized_cache_is_invalidated_on_weight_mutation():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    batch = make_batch("lenet5")
    packed.forward(batch)  # populate the caches
    spec = packed.specs[0]
    cached = spec.realized()
    # Mutate a packed weight that survives in the packing (keep the routing
    # metadata untouched so the packing stays valid).
    occupied = np.argwhere(spec.packed.channel_index >= 0)
    row, group = occupied[0]
    spec.packed.weights[row, group] += 1.0
    refreshed = spec.realized()
    assert refreshed is not cached
    column = spec.packed.channel_index[row, group]
    assert refreshed[row, column] == pytest.approx(cached[row, column] + 1.0)
    # The next forward and export see the refreshed realization.
    name, exported = packed.to_sparse()[0]
    assert exported[row, column] == refreshed[row, column]
    expected = dense_reference(model, packed).forward(batch)
    np.testing.assert_array_equal(packed.forward(batch), expected)


def test_to_sparse_export_returns_writable_copies():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    exported = packed.to_sparse()
    for (_, sparse), spec in zip(exported, packed.specs):
        assert sparse.flags.writeable
        sparse[:] = -1.0  # mutating the export must not corrupt the cache
    for (name, _), spec in zip(exported, packed.specs):
        np.testing.assert_array_equal(spec.realized(), spec.packed.to_sparse())


# -- batched export and accounting ----------------------------------------------------

def test_to_sparse_reconstructs_every_pruned_layer_in_order():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    names = [name for name, _ in model.packable_layers()]
    exported = packed.to_sparse()
    assert [name for name, _ in exported] == names
    assert [name for name, _ in packed.packed_layers()] == names
    for (_, sparse), (_, matrix) in zip(exported, packed.packed_layers()):
        np.testing.assert_array_equal(sparse, matrix.to_sparse())
        assert sparse.shape == matrix.original_shape


def test_packing_efficiency_and_nonzeros_are_cell_weighted():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    cells = sum(spec.packed.weights.size for spec in packed.specs)
    nonzeros = sum(int(np.count_nonzero(spec.packed.weights))
                   for spec in packed.specs)
    assert packed.total_nonzeros() == nonzeros
    assert packed.packing_efficiency() == pytest.approx(nonzeros / cells)
    assert 0.0 < packed.packing_efficiency() <= 1.0


def test_plan_uses_observed_spatial_sizes_from_forward():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    with pytest.raises(RuntimeError):
        packed.observed_spatial_sizes()
    packed.forward(make_batch("lenet5"))
    observed = packed.observed_spatial_sizes()
    assert observed == [8, 4]  # image 8, pooled once before conv2
    from_observed = packed.plan()
    explicit = packed.plan(spatial_sizes=observed)
    assert from_observed.total_cycles == explicit.total_cycles
    assert from_observed.total_tiles == explicit.total_tiles
    assert from_observed.total_tiles >= packed.num_layers


def test_summary_aggregates_plan_totals():
    model = make_model("lenet5")
    packed = PackedModel.from_model(model, PipelineConfig())
    packed.forward(make_batch("lenet5"))
    plan = packed.plan()
    summary = packed.summary(plan)
    assert summary["num_layers"] == packed.num_layers
    assert summary["total_tiles"] == plan.total_tiles
    assert summary["total_cycles"] == plan.total_cycles
    assert summary["utilization"] == plan.utilization
    assert summary["multiplexing_degree"] <= 8
    bare = packed.summary()
    assert "total_cycles" not in bare and bare["num_layers"] == packed.num_layers
