"""Packed-artifact serialization: round-trip bit-identity and integrity.

The contract under test (the serving subsystem's foundation):
``load_packed(save_packed(m))`` is forward-bit-identical to ``m`` for
float and quantized packed models, artifacts self-describe (format
version, pipeline config, model spec), and corruption — wrong version,
tampered arrays, truncated data, mismatched architectures — fails loudly
with :class:`~repro.combining.serialization.PackedArtifactError` instead
of producing a silently wrong model.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.combining import (
    FORMAT_VERSION,
    PackedArtifactError,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    QuantizedPackedModel,
    artifact_info,
    load_packed,
    save_packed,
)
from repro.combining.serialization import (
    artifact_fingerprint,
    fingerprint_packed,
)
from repro.experiments.workloads import sparse_network, spatial_sizes
from repro.models import build_model

MODEL_SPEC = {"name": "lenet5",
              "kwargs": {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                         "image_size": 8}}


def sparsified_lenet5(seed: int = 3) -> "build_model":
    model = build_model("lenet5", rng=np.random.default_rng(seed),
                        **MODEL_SPEC["kwargs"])
    mask_rng = np.random.default_rng(seed + 1)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    return model


@pytest.fixture(scope="module")
def packed_lenet5() -> PackedModel:
    return PackedModel.from_model(sparsified_lenet5(),
                                  PipelineConfig(alpha=8, gamma=0.5))


@pytest.fixture(scope="module")
def quantized_lenet5(packed_lenet5: PackedModel) -> QuantizedPackedModel:
    quantized = QuantizedPackedModel(packed_lenet5, bits=8)
    quantized.calibrate(np.random.default_rng(7).normal(size=(16, 1, 8, 8)))
    return quantized


@pytest.fixture
def images() -> np.ndarray:
    return np.random.default_rng(11).normal(size=(12, 1, 8, 8))


def rewrite_artifact(path, mutate) -> None:
    """Reload an artifact's raw arrays, apply ``mutate``, write it back."""
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key].copy() for key in data.files}
    mutate(arrays)
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def edit_meta(arrays: dict, edit) -> None:
    meta = json.loads(str(arrays["meta"][()]))
    edit(meta)
    arrays["meta"] = np.array(json.dumps(meta, sort_keys=True))


# -- round trips -------------------------------------------------------------
def test_packed_round_trip_is_forward_bit_identical(tmp_path, packed_lenet5,
                                                    images):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)
    loaded = load_packed(path)
    assert isinstance(loaded, PackedModel)
    assert loaded.layer_names() == packed_lenet5.layer_names()
    assert np.array_equal(loaded.forward(images), packed_lenet5.forward(images))
    assert np.array_equal(loaded.forward(images, mode="mx"),
                          packed_lenet5.forward(images, mode="mx"))
    assert np.array_equal(
        loaded.forward(images, batch_invariant=True),
        packed_lenet5.forward(images, batch_invariant=True))
    assert np.array_equal(loaded.predict(images), packed_lenet5.predict(images))


def test_packed_round_trip_preserves_packings_and_config(tmp_path,
                                                         packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)
    loaded = load_packed(path)
    assert loaded.pipeline_config == packed_lenet5.pipeline_config
    assert loaded.array_rows == packed_lenet5.array_rows
    for original, restored in zip(packed_lenet5.specs, loaded.specs):
        assert np.array_equal(original.packed.weights, restored.packed.weights)
        assert np.array_equal(original.packed.channel_index,
                              restored.packed.channel_index)
        assert original.packed.grouping.groups == restored.packed.grouping.groups
        assert original.packed.original_shape == restored.packed.original_shape
        assert (fingerprint_packed(original.packed)
                == fingerprint_packed(restored.packed))


def test_quantized_round_trip_is_forward_bit_identical(tmp_path,
                                                       quantized_lenet5,
                                                       images):
    path = save_packed(quantized_lenet5, tmp_path / "lenet5.int8.npz",
                       model_spec=MODEL_SPEC)
    loaded = load_packed(path)
    assert isinstance(loaded, QuantizedPackedModel)
    assert loaded.calibrated
    assert loaded.bits == 8
    assert np.array_equal(loaded.forward(images),
                          quantized_lenet5.forward(images))
    assert np.array_equal(
        loaded.forward(images, track_errors=False, batch_invariant=True),
        quantized_lenet5.forward(images, track_errors=False,
                                 batch_invariant=True))
    for original, restored in zip(quantized_lenet5.layer_calibrations(),
                                  loaded.layer_calibrations()):
        assert original.input_quantizer.scale == restored.input_quantizer.scale
        assert original.weight_quantizer.scale == restored.weight_quantizer.scale
        assert original.weight_rmse == restored.weight_rmse


def test_matrix_only_round_trip(tmp_path):
    layers = sparse_network("lenet5", density=0.13, seed=0)
    with PackingPipeline(PipelineConfig(alpha=8, gamma=0.5)) as pipeline:
        model = PackedModel.from_pipeline_result(pipeline.run(layers))
    path = save_packed(model, tmp_path / "lenet5-matrices.npz")
    loaded = load_packed(path)
    assert loaded.model is None
    assert loaded.layer_names() == model.layer_names()
    for (_, original), (_, restored) in zip(model.to_sparse(),
                                            loaded.to_sparse()):
        assert np.array_equal(original, restored)
    plan = loaded.plan(spatial_sizes(layers))
    assert plan.total_cycles == model.plan(spatial_sizes(layers)).total_cycles
    with pytest.raises(RuntimeError, match="without an nn model"):
        loaded.forward(np.zeros((1, 1, 8, 8)))


def test_uncompressed_round_trip_identical(tmp_path, packed_lenet5, images):
    compressed = save_packed(packed_lenet5, tmp_path / "c.npz",
                             model_spec=MODEL_SPEC, compress=True)
    uncompressed = save_packed(packed_lenet5, tmp_path / "u.npz",
                               model_spec=MODEL_SPEC, compress=False)
    assert uncompressed.stat().st_size > compressed.stat().st_size
    assert np.array_equal(load_packed(compressed).forward(images),
                          load_packed(uncompressed).forward(images))


# -- V2 blob layout and mmap loading -----------------------------------------
def test_v2_consolidates_state_into_per_dtype_blobs(tmp_path, packed_lenet5):
    """V2 stores the whole nn state as one blob per dtype instead of one
    zip entry per tensor — few entries, each one mappable."""
    path = save_packed(packed_lenet5, tmp_path / "v2.npz",
                       model_spec=MODEL_SPEC)
    with np.load(path, allow_pickle=False) as data:
        entries = sorted(data.files)
    assert not any(name.startswith("state.") for name in entries)
    blobs = [name for name in entries if name.startswith("blob.")]
    assert blobs  # per-dtype consolidated state
    # packed.* (4) + blob.* + meta, nothing per-tensor: a handful total.
    assert len(entries) <= 4 + len(blobs) + 1
    v1 = save_packed(packed_lenet5, tmp_path / "v1.npz",
                     model_spec=MODEL_SPEC, format_version=1)
    with np.load(v1, allow_pickle=False) as data:
        v1_entries = sorted(data.files)
    assert any(name.startswith("state.") for name in v1_entries)
    assert len(entries) < len(v1_entries)


def test_v1_format_save_and_load_compat(tmp_path, packed_lenet5,
                                        quantized_lenet5, images):
    """format_version=1 artifacts (and the checked-in golden ones) keep
    loading bit-identically under the V2 reader."""
    for model, reference in [(packed_lenet5, packed_lenet5.forward(images)),
                             (quantized_lenet5,
                              quantized_lenet5.forward(images))]:
        path = save_packed(model, tmp_path / "v1.npz", model_spec=MODEL_SPEC,
                           format_version=1)
        assert artifact_info(path)["format_version"] == 1
        assert np.array_equal(load_packed(path).forward(images), reference)
        path.unlink()


def test_mmap_load_is_forward_bit_identical(tmp_path, packed_lenet5,
                                            quantized_lenet5, images):
    for model in (packed_lenet5, quantized_lenet5):
        suffix = "q" if isinstance(model, QuantizedPackedModel) else "f"
        path = save_packed(model, tmp_path / f"{suffix}.npz",
                           model_spec=MODEL_SPEC, compress=False)
        reference = load_packed(path, mmap=False)
        for mmap in (True, "auto"):
            mapped = load_packed(path, mmap=mmap)
            assert np.array_equal(mapped.forward(images),
                                  reference.forward(images))
            assert np.array_equal(
                mapped.forward(images, batch_invariant=True),
                reference.forward(images, batch_invariant=True))


def test_mmap_rejects_compressed_artifacts_but_auto_falls_back(
        tmp_path, packed_lenet5, images):
    path = save_packed(packed_lenet5, tmp_path / "c.npz",
                       model_spec=MODEL_SPEC, compress=True)
    with pytest.raises(PackedArtifactError, match="cannot be memory-mapped"):
        load_packed(path, mmap=True)
    loaded = load_packed(path, mmap="auto")  # silent fallback
    assert np.array_equal(loaded.forward(images),
                          packed_lenet5.forward(images))
    with pytest.raises(ValueError, match="mmap"):
        load_packed(path, mmap="sometimes")


def test_save_rejects_unknown_format_version(tmp_path, packed_lenet5):
    with pytest.raises(ValueError, match="unknown packed-artifact format"):
        save_packed(packed_lenet5, tmp_path / "x.npz", format_version=99)


# -- model resolution --------------------------------------------------------
def test_load_with_explicit_architecture(tmp_path, packed_lenet5, images):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz")  # no spec
    architecture = build_model("lenet5", rng=np.random.default_rng(99),
                               **MODEL_SPEC["kwargs"])
    loaded = load_packed(path, model=architecture)
    assert loaded.model is architecture
    assert np.array_equal(loaded.forward(images), packed_lenet5.forward(images))


def test_load_without_spec_or_model_demands_architecture(tmp_path,
                                                         packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz")
    with pytest.raises(PackedArtifactError, match="pass the\n?.*architecture"):
        load_packed(path)


def test_load_with_wrong_architecture_fails_loudly(tmp_path, packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)
    wrong = build_model("lenet5", in_channels=1, num_classes=10, scale=2.0,
                        image_size=8)
    with pytest.raises(PackedArtifactError):
        load_packed(path, model=wrong)


def test_save_model_spec_requires_model_backed_packing(tmp_path):
    layers = sparse_network("lenet5", density=0.13, seed=0)
    with PackingPipeline(PipelineConfig()) as pipeline:
        model = PackedModel.from_pipeline_result(pipeline.run(layers))
    with pytest.raises(ValueError, match="no nn model"):
        save_packed(model, tmp_path / "x.npz", model_spec=MODEL_SPEC)


def test_save_rejects_unserializable_spec(tmp_path, packed_lenet5):
    with pytest.raises(ValueError, match="JSON-serializable"):
        save_packed(packed_lenet5, tmp_path / "x.npz",
                    model_spec={"name": "lenet5",
                                "kwargs": {"rng": np.random.default_rng(0)}})


def test_save_rejects_uncalibrated_quantized(tmp_path, packed_lenet5):
    quantized = QuantizedPackedModel(packed_lenet5, bits=8)
    with pytest.raises(ValueError, match="uncalibrated"):
        save_packed(quantized, tmp_path / "x.npz")


def test_save_rejects_other_objects(tmp_path):
    with pytest.raises(TypeError, match="PackedModel"):
        save_packed(object(), tmp_path / "x.npz")


# -- integrity ---------------------------------------------------------------
def test_format_version_mismatch_raises(tmp_path, packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)
    rewrite_artifact(path, lambda arrays: edit_meta(
        arrays, lambda meta: meta.update(format_version=FORMAT_VERSION + 1)))
    with pytest.raises(PackedArtifactError, match="format version"):
        load_packed(path)
    with pytest.raises(PackedArtifactError, match="format version"):
        artifact_info(path)


def test_tampered_weights_fail_the_fingerprint(tmp_path, packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)

    def corrupt(arrays: dict) -> None:
        weights = arrays["packed.weights"]
        index = int(np.flatnonzero(weights)[0])
        weights[index] *= 1.5

    rewrite_artifact(path, corrupt)
    with pytest.raises(PackedArtifactError, match="fingerprint mismatch"):
        load_packed(path)


def test_tampered_routing_fails_the_fingerprint(tmp_path, packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)

    def corrupt(arrays: dict) -> None:
        # Swap two distinct member columns of the last layer: the grouping
        # stays structurally plausible, so only the fingerprint (or the
        # routing validation it guards) can catch the edit.
        columns = arrays["packed.group_columns"]
        assert columns[-1] != columns[-2]
        columns[[-1, -2]] = columns[[-2, -1]]

    rewrite_artifact(path, corrupt)
    with pytest.raises(PackedArtifactError):
        load_packed(path)


def test_truncated_arrays_raise(tmp_path, packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "lenet5.npz",
                       model_spec=MODEL_SPEC)
    rewrite_artifact(
        path,
        lambda arrays: arrays.update({
            "packed.weights": arrays["packed.weights"][:-1]}))
    with pytest.raises(PackedArtifactError,
                       match="truncated|past the end"):
        load_packed(path)


def test_non_artifact_npz_rejected(tmp_path):
    path = tmp_path / "random.npz"
    np.savez(path, data=np.arange(3))
    with pytest.raises(PackedArtifactError, match="not a packed artifact"):
        artifact_info(path)
    with pytest.raises(PackedArtifactError, match="not a packed artifact"):
        load_packed(path)


def test_garbage_and_truncated_containers_rejected(tmp_path, packed_lenet5):
    """Container-level corruption raises PackedArtifactError, not raw
    zipfile / pickle errors with misleading messages."""
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not an npz file at all")
    truncated = tmp_path / "truncated.npz"
    artifact = save_packed(packed_lenet5, tmp_path / "ok.npz")
    truncated.write_bytes(artifact.read_bytes()[:100])
    for path in (garbage, truncated):
        with pytest.raises(PackedArtifactError, match="not a readable"):
            artifact_info(path)
        with pytest.raises(PackedArtifactError, match="not a readable"):
            load_packed(path)
    with pytest.raises(FileNotFoundError):
        load_packed(tmp_path / "never-saved.npz")


def test_artifact_info_reports_without_loading(tmp_path, quantized_lenet5):
    path = save_packed(quantized_lenet5, tmp_path / "lenet5.int8.npz",
                       model_spec=MODEL_SPEC)
    info = artifact_info(path)
    assert info["kind"] == "quantized"
    assert info["format_version"] == FORMAT_VERSION
    assert info["quantized"]["bits"] == 8
    assert [layer["name"] for layer in info["layers"]] \
        == quantized_lenet5.layer_names()
    assert info["file_bytes"] == path.stat().st_size


# -- content fingerprints (the hot-swap token) -------------------------------
def test_content_fingerprint_is_stable_across_resave(tmp_path, packed_lenet5):
    first = save_packed(packed_lenet5, tmp_path / "a.npz",
                        model_spec=MODEL_SPEC)
    second = save_packed(packed_lenet5, tmp_path / "b.npz",
                         model_spec=MODEL_SPEC)
    assert artifact_fingerprint(first) == artifact_fingerprint(second)
    # The cheap probe agrees with the full-metadata path.
    assert artifact_info(first)["fingerprint"] == artifact_fingerprint(first)
    assert not artifact_fingerprint(first).startswith("file-")


def test_content_fingerprint_changes_with_content(tmp_path, packed_lenet5):
    original = save_packed(packed_lenet5, tmp_path / "a.npz",
                           model_spec=MODEL_SPEC)
    model = sparsified_lenet5(seed=17)
    other = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    changed = save_packed(other, tmp_path / "b.npz", model_spec=MODEL_SPEC)
    assert artifact_fingerprint(original) != artifact_fingerprint(changed)


def test_legacy_artifact_falls_back_to_file_fingerprint(tmp_path,
                                                        packed_lenet5):
    path = save_packed(packed_lenet5, tmp_path / "a.npz",
                       model_spec=MODEL_SPEC)
    rewrite_artifact(path, lambda arrays: edit_meta(
        arrays, lambda meta: meta.pop("fingerprint")))
    fingerprint = artifact_fingerprint(path)
    assert fingerprint.startswith("file-")
    assert artifact_info(path)["fingerprint"] == fingerprint
    # Still a usable identity: byte-identical copies agree, edits differ.
    copy = tmp_path / "copy.npz"
    copy.write_bytes(path.read_bytes())
    assert artifact_fingerprint(copy) == fingerprint


# -- config round trip -------------------------------------------------------
def test_pipeline_config_round_trips_through_dict():
    config = PipelineConfig(alpha=4, gamma=0.25, policy="first-fit",
                            grouping_engine="reference",
                            prune_engine="reference", array_rows=16,
                            array_cols=8, workers=2, seed=5)
    assert PipelineConfig.from_dict(config.to_dict()) == config


def test_pipeline_config_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown PipelineConfig fields"):
        PipelineConfig.from_dict({"alpha": 8, "turbo": True})
