"""Tests for the accuracy-vs-bits quantized inference sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import quant_sweep
from repro.experiments.common import FAST_RUN

#: A scaled-down sweep every quick-tier test shares.  64 eval samples keep
#: the 8-bit agreement comfortably inside the documented 95% tolerance
#: (the untrained substrate's logit margins are tight, so tiny batches
#: make top-1 agreement needlessly noisy).
QUICK = dict(networks=("lenet5",), bits_values=(2, 4, 8), eval_samples=64,
             calibration_samples=32)


def test_sweep_reports_expected_structure_and_tolerance():
    result = quant_sweep.run(**QUICK)
    assert result["experiment"] == "quant_sweep"
    sweep = result["results"]["lenet5"]
    assert 0.0 <= sweep["exact_accuracy"] <= 1.0
    points = sweep["points"]
    assert [point["bits"] for point in points] == [2, 4, 8]
    for point in points:
        assert 0.0 <= point["agreement"] <= 1.0
        assert 0.0 <= point["accuracy"] <= 1.0
        assert point["output_rmse"] >= 0.0
        assert point["quantized_cycles"] > 0
    by_bits = {point["bits"]: point for point in points}
    # The serving tolerance at 8 bits, and the error/cost trends.
    assert by_bits[8]["agreement"] >= 0.95
    assert by_bits[8]["output_rmse"] < by_bits[4]["output_rmse"] \
        < by_bits[2]["output_rmse"]
    assert by_bits[2]["quantized_cycles"] < by_bits[8]["quantized_cycles"]


def test_sweep_workers_match_serial():
    serial = quant_sweep.run(**QUICK, workers=1)
    parallel = quant_sweep.run(**QUICK, workers=2)
    assert serial == parallel


def test_sweep_percentile_calibration_runs():
    result = quant_sweep.run(**QUICK, calibration="percentile",
                             percentile=99.0)
    assert result["calibration"] == "percentile"
    for point in result["results"]["lenet5"]["points"]:
        assert 0.0 <= point["max_input_saturation"] <= 1.0


def test_sparsified_model_masks_packable_layers_deterministically():
    first = quant_sweep.sparsified_model("lenet5", FAST_RUN, density=0.3)
    second = quant_sweep.sparsified_model("lenet5", FAST_RUN, density=0.3)
    for (_, a), (_, b) in zip(first.packable_layers(),
                              second.packable_layers()):
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        density = np.count_nonzero(a.weight.data) / a.weight.data.size
        assert density < 0.5


@pytest.mark.slow
def test_full_network_sweep_prints_accuracy_vs_bits_table(capsys):
    result = quant_sweep.main(eval_samples=64, bits_values=(4, 8))
    output = capsys.readouterr().out
    assert "accuracy vs bits" in output
    for network in quant_sweep.NETWORKS:
        assert network in result["results"]
        assert network in output
        points = {point["bits"]: point
                  for point in result["results"][network]["points"]}
        assert points[8]["agreement"] >= 0.95
