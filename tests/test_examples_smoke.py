"""Smoke tests: the runnable examples must execute end-to-end.

Only the fast examples are exercised here (the training-sweep examples are
covered indirectly through the experiment and trainer tests); the goal is
to catch API drift that would break the documented entry points.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

#: The examples run small packing / pipelining workloads end-to-end; keep
#: them out of the quick ``-m "not slow"`` tier (tier-1 still runs them).
pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main()``."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contains_documented_scripts():
    names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "lenet_mnist_packing", "resnet_cifar_sweep",
            "limited_data_retraining", "cross_layer_pipelining",
            "packed_inference", "quantized_inference",
            "serving_demo"} <= names


def test_quickstart_example_runs(capsys):
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "packing efficiency" in output
    assert "tiles on a 32x32 array" in output


def test_packed_inference_example_runs(capsys):
    module = load_example("packed_inference")
    module.main()
    output = capsys.readouterr().out
    assert "exact mode bit-identical to dense reference: True" in output
    assert "mx mode matches dense reference numerically: True" in output
    assert "packed model totals" in output


def test_quantized_inference_example_runs(capsys):
    module = load_example("quantized_inference")
    module.main()
    output = capsys.readouterr().out
    assert "8-bit top-1 agreement with exact packed forward:" in output
    assert "bits  agreement  cycles" in output
    # The documented serving tolerance holds in the walkthrough.
    agreement = float(output.split("exact packed forward: ")[1].split("%")[0])
    assert agreement >= 95.0


def test_serving_demo_example_runs(capsys):
    module = load_example("serving_demo")
    module.main()
    output = capsys.readouterr().out
    assert "responses bit-identical to direct forward: 48/48" in output
    assert "served 48 requests" in output
    assert "artifact loads" in output


def test_cross_layer_pipelining_example_runs(capsys):
    module = load_example("cross_layer_pipelining")
    module.main()
    output = capsys.readouterr().out
    assert "resnet20" in output
    assert "pipelined" in output


@pytest.mark.parametrize("name", ["lenet_mnist_packing", "resnet_cifar_sweep",
                                  "limited_data_retraining"])
def test_training_examples_are_importable(name):
    """The heavier training examples must at least import cleanly."""
    module = load_example(name)
    assert callable(module.main)
