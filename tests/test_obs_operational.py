"""The operational observability layer: rolling windows, the SLO engine,
the lifecycle event log, the live HTTP exporter, pipeline stage metrics,
and Chrome-trace export.

Two properties anchor everything here:

* **Determinism under an injected clock.**  Windows bucket by the
  absolute index of a plain callable clock, so a fake clock drives
  rotation, expiry, and SLO breach -> recover transitions exactly.
* **Wrapping only.**  A server with the exporter attached, the SLO
  engine evaluating, and the event log enabled must return bit-identical
  responses to bare serving — across backends, worker counts, and
  kernels.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.combining import (
    PackingPipeline,
    PipelineConfig,
    save_packed,
)
from repro.combining.pipeline import PIPELINE_STAGES
from repro.obs import (
    EventLog,
    MetricsRegistry,
    ObservabilityExporter,
    SLOEngine,
    SLORule,
    Span,
    Trace,
    WindowedCounter,
    WindowedHistogram,
    chrome_trace_from_pipeline,
    chrome_trace_from_traces,
    worst_verdict,
    write_chrome_trace,
)
from repro.serving import InferenceServer, ModelRegistry
from tests.test_serving import (
    MODEL_SPEC,
    build_packed,
    direct_forward,
    request_stream,
)


class FakeClock:
    """An injectable wall clock the tests advance by hand."""

    def __init__(self, start: float = 1_000_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def packed():
    return build_packed()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, packed):
    path = tmp_path_factory.mktemp("ops") / "lenet5.packed.npz"
    save_packed(packed, path, model_spec=MODEL_SPEC, compress=False)
    return path


def _get(url: str) -> tuple[int, str]:
    """GET without raising on 4xx/5xx; returns (status, body text)."""
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


# -- rolling windows ----------------------------------------------------------
def test_window_validation():
    with pytest.raises(ValueError):
        WindowedHistogram(bucket_seconds=0.0)
    with pytest.raises(ValueError):
        WindowedHistogram(buckets=0)
    with pytest.raises(ValueError):
        WindowedCounter().inc(-1)


def test_windowed_histogram_rotates_and_expires_under_fake_clock():
    clock = FakeClock()
    window = WindowedHistogram(bucket_seconds=5.0, buckets=3, clock=clock)
    window.record(0.010)
    clock.advance(5.0)
    window.record(0.020)
    assert len(window) == 2
    assert window.count == 2

    # Two more bucket widths: the first bucket ages out of the 3-bucket
    # window, the second survives at the window's trailing edge.
    clock.advance(10.0)
    assert len(window) == 1
    assert window.count == 1
    assert window.quantile(0.5) == pytest.approx(0.020, rel=0.2)

    # One more width and the window drains to empty.
    clock.advance(5.0)
    assert len(window) == 0
    assert window.count == 0
    assert window.summary()["count"] == 0


def test_window_memory_stays_bounded_forever():
    clock = FakeClock()
    window = WindowedHistogram(bucket_seconds=1.0, buckets=4, clock=clock)
    for _ in range(100):
        window.record(0.001)
        clock.advance(1.0)
        assert len(window) <= 4


def test_window_partitions_merge_exactly_in_any_order():
    """Split one observation stream across three windows under a shared
    clock; merging their states back — in any order — must reproduce the
    single-stream window state bit for bit."""
    import random

    rng = random.Random(5)
    clock = FakeClock()
    reference = WindowedHistogram(bucket_seconds=5.0, buckets=12,
                                  clock=clock)
    partitions = [WindowedHistogram(bucket_seconds=5.0, buckets=12,
                                    clock=clock) for _ in range(3)]
    for _ in range(200):
        value = rng.uniform(1e-5, 0.5)
        reference.record(value)
        partitions[rng.randrange(3)].record(value)
        if rng.random() < 0.1:
            clock.advance(5.0)

    states = [partition.state() for partition in partitions]
    forward = WindowedHistogram(bucket_seconds=5.0, buckets=12, clock=clock)
    backward = WindowedHistogram(bucket_seconds=5.0, buckets=12, clock=clock)
    for state in states:
        forward.merge_state(state)
    for state in reversed(states):
        backward.merge_state(state)
    assert forward.state() == backward.state() == reference.state()
    assert forward.merged().to_dict() == reference.merged().to_dict()


def test_window_merge_rejects_geometry_mismatch():
    window = WindowedHistogram(bucket_seconds=5.0, buckets=12)
    other = WindowedHistogram(bucket_seconds=1.0, buckets=12)
    with pytest.raises(ValueError):
        window.merge_state(other.state())
    counter = WindowedCounter(bucket_seconds=5.0, buckets=12)
    with pytest.raises(ValueError):
        counter.merge_state(WindowedCounter(buckets=6).state())


def test_windowed_counter_rates_and_exact_merge():
    clock = FakeClock()
    counter = WindowedCounter(bucket_seconds=5.0, buckets=2, clock=clock)
    counter.inc(3)
    clock.advance(5.0)
    counter.inc(2)
    assert counter.total() == 5
    assert counter.rate() == pytest.approx(5 / 10.0)
    other = WindowedCounter(bucket_seconds=5.0, buckets=2, clock=clock)
    other.inc(4)
    counter.merge_state(other.state())
    assert counter.total() == 9
    # The first bucket expires once the clock moves another width on.
    clock.advance(5.0)
    assert counter.total() == 6


# -- SLO rules and engine -----------------------------------------------------
def test_slo_rule_validation_and_verdict_bands():
    with pytest.raises(ValueError):
        SLORule("r", "latency_mean", 0.1)
    with pytest.raises(ValueError):
        SLORule("r", "latency_quantile", 0.1, quantile=1.5)
    with pytest.raises(ValueError):
        SLORule("r", "latency_quantile", -1.0)
    with pytest.raises(ValueError):
        SLORule("r", "latency_quantile", 0.1, warn_ratio=1.5)
    with pytest.raises(ValueError):
        SLORule("r", "latency_quantile", 0.1, latency="tail")

    rule = SLORule("p99", "latency_quantile", target=0.100, warn_ratio=0.8)
    assert rule.verdict(0.050) == "ok"
    assert rule.verdict(0.090) == "warn"
    assert rule.verdict(0.150) == "breach"
    assert worst_verdict(["ok", "breach", "warn"]) == "breach"
    assert worst_verdict([]) == "ok"


def test_slo_engine_rejects_duplicate_rule_names():
    with pytest.raises(ValueError):
        SLOEngine([SLORule("r", "error_rate", 0.1),
                   SLORule("r", "queue_depth", 10.0)])


def test_slo_breach_and_recover_under_fake_clock():
    """Slow latencies breach the rule (one burn episode starts, the
    transition emits an event); once they age out of the rolling window
    the verdict recovers and the recover transition is emitted."""
    clock = FakeClock()
    events = EventLog(clock=clock)
    engine = SLOEngine([SLORule("p99", "latency_quantile", target=0.010,
                                quantile=0.99, latency="service")],
                       bucket_seconds=5.0, buckets=3, clock=clock,
                       events=events)
    for _ in range(10):
        engine.observe_latency("service", 0.200)
    report = engine.evaluate()
    assert report.overall == "breach"
    [row] = report.rules
    assert row["verdict"] == "breach"
    assert row["value"] > 0.010
    assert row["burn"]["breaching"] is True
    assert row["burn"]["episodes"] == 1
    assert [e["kind"] for e in events.snapshot()] == ["slo_breach"]

    # Still breaching on re-evaluation: no new episode, no new event.
    assert engine.evaluate().overall == "breach"
    assert engine.evaluate().rules[0]["burn"]["episodes"] == 1
    assert len(events) == 1

    # Advance past the whole window: the slow observations expire, the
    # empty window measures ok, and the recover edge is emitted once.
    clock.advance(engine.windows["service"].window_seconds + 5.0)
    report = engine.evaluate()
    assert report.overall == "ok"
    assert report.rules[0]["burn"]["breaching"] is False
    assert [e["kind"] for e in events.snapshot()] \
        == ["slo_breach", "slo_recover"]


def test_slo_error_rate_and_queue_depth_rules():
    clock = FakeClock()
    engine = SLOEngine([SLORule("errors", "error_rate", target=0.10),
                        SLORule("depth", "queue_depth", target=4.0)],
                       clock=clock)
    for index in range(10):
        engine.observe_request(failed=index < 2)  # 20% failures
    engine.observe_queue_depth(9)
    report = engine.evaluate()
    by_name = {row["name"]: row for row in report.rules}
    assert by_name["errors"]["verdict"] == "breach"
    assert by_name["errors"]["value"] == pytest.approx(0.2)
    assert by_name["depth"]["verdict"] == "breach"
    assert report.overall == "breach"
    summaries = engine.window_summaries()
    assert summaries["requests"] == 10
    assert summaries["failures"] == 2


def test_slo_empty_windows_evaluate_ok():
    """An idle server is healthy: empty windows measure 0 everywhere."""
    engine = SLOEngine([SLORule("p99", "latency_quantile", target=1e-9),
                        SLORule("errors", "error_rate", target=1e-9)])
    assert engine.evaluate().overall == "ok"


# -- event log ----------------------------------------------------------------
def test_event_log_is_bounded_and_counts_survive_overwrite():
    clock = FakeClock()
    log = EventLog(capacity=4, clock=clock)
    for index in range(10):
        log.emit("tick" if index % 2 else "tock", index=index)
        clock.advance(1.0)
    assert len(log) == 4
    stats = log.stats()
    assert stats["capacity"] == 4
    assert stats["retained"] == 4
    assert stats["emitted"] == 10
    assert stats["dropped"] == 6
    # Per-kind counts cover every emit, not just the retained ring.
    assert stats["kinds"] == {"tick": 5, "tock": 5}

    snapshot = log.snapshot()
    assert [event["attributes"]["index"] for event in snapshot] \
        == [6, 7, 8, 9]
    sequences = [event["seq"] for event in snapshot]
    assert sequences == sorted(sequences)
    assert snapshot[0]["timestamp"] == pytest.approx(1_000_006.0)
    assert [e["attributes"]["index"] for e in log.snapshot(kind="tock")] \
        == [6, 8]
    assert len(log.snapshot(limit=2)) == 2


def test_registry_emits_lifecycle_events(artifact, tmp_path, packed):
    """Loads, LRU evictions, swaps, and load failures all land in the
    registry's event log as timestamped, attributed records."""
    registry = ModelRegistry(max_resident=1)
    registry.register("a", path=artifact, mode="exact")
    registry.register("b", path=artifact, mode="exact")
    registry.get("a")
    registry.get("b")  # evicts "a" (max_resident=1)
    kinds = [event["kind"] for event in registry.event_log.snapshot()]
    assert kinds == ["model_load", "model_evict", "model_load"]
    load = registry.event_log.snapshot(kind="model_load")[0]
    assert load["attributes"]["model"] == "a"
    assert load["attributes"]["fingerprint"]
    evict = registry.event_log.snapshot(kind="model_evict")[0]
    assert evict["attributes"]["model"] == "a"

    swap_info = registry.swap("b", artifact)
    [swap] = registry.event_log.snapshot(kind="model_swap")
    assert swap["attributes"]["generation"] == swap_info["generation"]
    assert swap["attributes"]["fingerprint"] == swap_info["fingerprint"]
    assert swap["attributes"]["previous_fingerprint"] \
        == swap_info["previous_fingerprint"]

    # Registration validates the path, so break the artifact *after*
    # registering it: the lazy load then fails and records the failure.
    import shutil

    doomed = tmp_path / "doomed.npz"
    shutil.copyfile(artifact, doomed)
    registry.register("missing", path=doomed, mode="exact")
    doomed.unlink()
    with pytest.raises(Exception):
        registry.get("missing")
    [failure] = registry.event_log.snapshot(kind="load_failure")
    assert failure["attributes"]["model"] == "missing"
    assert failure["attributes"]["error"]


# -- the HTTP exporter --------------------------------------------------------
class _StubProvider:
    """Minimal duck-typed provider: the exporter needs nothing more."""

    def __init__(self, status: str = "ok"):
        self.status = status

    def prometheus_text(self) -> str:
        return "# TYPE up gauge\nup 1\n"

    def stats(self) -> dict:
        return {"requests": 7}

    def health(self) -> dict:
        return {"live": True, "status": self.status}

    def traces(self, limit=None) -> list:
        return [{"trace_id": "t-1"}][:limit]

    def events(self, limit=None) -> list:
        return [{"kind": "server_start"}, {"kind": "model_load"}][:limit]


def test_exporter_routes_status_codes_and_limits():
    provider = _StubProvider()
    exporter = ObservabilityExporter(provider, port=0).start()
    try:
        assert exporter.port != 0  # ephemeral bind reports the real port
        status, body = _get(exporter.url + "/metrics")
        assert status == 200 and body.startswith("# TYPE up gauge")
        status, body = _get(exporter.url + "/health")
        assert status == 200 and json.loads(body)["status"] == "ok"

        provider.status = "warn"  # a page, not an outage: still 200
        assert _get(exporter.url + "/health")[0] == 200
        provider.status = "breach"  # down to a load balancer: 503
        status, body = _get(exporter.url + "/health")
        assert status == 503 and json.loads(body)["status"] == "breach"

        assert json.loads(_get(exporter.url + "/stats")[1]) \
            == {"requests": 7}
        assert json.loads(_get(exporter.url + "/traces")[1]) \
            == {"traces": [{"trace_id": "t-1"}]}
        events = json.loads(_get(exporter.url + "/events?limit=1")[1])
        assert events == {"events": [{"kind": "server_start"}]}

        status, body = _get(exporter.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]

        with pytest.raises(RuntimeError):
            exporter.start()
    finally:
        exporter.close()
    exporter.close()  # idempotent


def test_exporter_concurrent_scrapes_while_serving(packed):
    """Scrape every route from several threads while requests are in
    flight: every response parses, the registry stays consistent, and
    ``stop()`` shuts the endpoint down cleanly."""
    registry = ModelRegistry()
    registry.add("m", packed)
    requests = request_stream(24, seed=11)
    scrape_errors: list[str] = []
    statuses: list[int] = []
    lock = threading.Lock()

    server = InferenceServer(registry, max_batch=8, max_wait=0.002,
                             workers=2, trace_capacity=16,
                             slo=[SLORule("p99", "latency_quantile", 5.0)])
    server.start()
    exporter = server.serve_metrics(port=0)
    url = exporter.url
    assert server.exporter is exporter
    with pytest.raises(RuntimeError):
        server.serve_metrics()  # one endpoint per server

    def scraper() -> None:
        for _ in range(8):
            for route in ("/metrics", "/health", "/stats", "/traces",
                          "/events"):
                try:
                    status, body = _get(url + route)
                    if route != "/metrics":
                        json.loads(body)
                    with lock:
                        statuses.append(status)
                except Exception as error:  # noqa: BLE001 - collected
                    with lock:
                        scrape_errors.append(f"{route}: {error}")

    scrapers = [threading.Thread(target=scraper) for _ in range(4)]
    for thread in scrapers:
        thread.start()
    pending = [server.submit("m", request) for request in requests]
    outputs = [request.result(timeout=30.0) for request in pending]
    for thread in scrapers:
        thread.join()

    assert not scrape_errors
    assert statuses and all(status == 200 for status in statuses)
    # Served bits and accounting are unperturbed by the scrape storm.
    for request, output in zip(requests, outputs):
        assert np.array_equal(output, direct_forward(packed, "exact",
                                                     request))
    stats = server.stats()
    assert stats["totals"]["requests"] == len(requests)
    assert stats["windows"]["requests"] == len(requests)

    server.stop()
    assert server.exporter is None
    assert not exporter.running
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url + "/metrics", timeout=2.0)


def test_health_flips_on_breach_and_recovers_on_live_server(packed):
    """The acceptance scenario: an induced latency breach flips /health
    to 503, and advancing the (injected) clock past the rolling window
    recovers it to 200 — on a real serving stack over real HTTP."""
    clock = FakeClock()
    registry = ModelRegistry()
    registry.add("m", packed)
    # Any real service latency breaches a 1ns target.
    with InferenceServer(registry, max_batch=4, max_wait=0.001,
                         slo=[SLORule("p99", "latency_quantile", 1e-9,
                                      latency="service")],
                         clock=clock) as server:
        exporter = server.serve_metrics(port=0)
        for request in request_stream(4, seed=2):
            server.infer("m", request)
        status, body = _get(exporter.url + "/health")
        assert status == 503
        health = json.loads(body)
        assert health["status"] == "breach"
        assert health["live"] is True

        clock.advance(server.slo.windows["service"].window_seconds + 10.0)
        status, body = _get(exporter.url + "/health")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        kinds = [event["kind"] for event in server.events()]
        assert "slo_breach" in kinds and "slo_recover" in kinds


# -- wrapping only: observed serving stays bit-identical ----------------------
OPERATIONAL_CELLS = [
    pytest.param(backend, workers, kernel,
                 marks=() if backend == "thread" else pytest.mark.slow,
                 id=f"{backend}-w{workers}-{kernel}")
    for backend in ("thread", "process")
    for workers in (1, 2, 4)
    for kernel in ("blocked", "loops")
]


@pytest.mark.parametrize("backend,workers,kernel", OPERATIONAL_CELLS)
def test_operational_serving_is_bit_identical_to_direct(packed, artifact,
                                                        backend, workers,
                                                        kernel):
    """Exporter attached, SLO engine evaluating, event log enabled —
    across every backend x workers x kernel cell the responses must
    still match the direct batch-invariant forward bit for bit."""
    registry = ModelRegistry()
    if backend == "process":
        registry.register("m", path=artifact, mode="exact")
    else:
        registry.add("m", packed)
    requests = request_stream(8, seed=33)
    rules = [SLORule("p99", "latency_quantile", 5.0),
             SLORule("errors", "error_rate", 0.5)]
    with InferenceServer(registry, max_batch=8, max_wait=0.002,
                         workers=workers, backend=backend, kernel=kernel,
                         slo=rules, trace_capacity=16) as server:
        exporter = server.serve_metrics(port=0)
        outputs = [server.infer("m", request) for request in requests]
        health = json.loads(_get(exporter.url + "/health")[1])
        stats = server.stats()
    for request, output in zip(requests, outputs):
        assert np.array_equal(output, direct_forward(packed, "exact",
                                                     request,
                                                     kernel=kernel))
    assert health["status"] in ("ok", "warn")
    assert stats["windows"]["requests"] == len(requests)
    assert stats["events"]["emitted"] >= 2  # server_start, exporter_start


# -- pipeline stage instrumentation ------------------------------------------
def small_layers(seed: int = 0, count: int = 3):
    rng = np.random.default_rng(seed)
    layers = []
    for index in range(count):
        rows, cols = 40 + 8 * index, 36 + 4 * index
        matrix = rng.normal(size=(rows, cols)) \
            * (rng.random((rows, cols)) < 0.2)
        layers.append((f"layer-{index}", matrix))
    return layers


def test_pipeline_stage_spans_and_metrics():
    """Each packed layer carries group/prune/pack/tile stage spans, and
    an attached registry accumulates stage histograms + counters —
    without changing the packed results."""
    layers = small_layers()
    config = PipelineConfig(alpha=8, gamma=0.5)
    metrics = MetricsRegistry()
    result = PackingPipeline(config, metrics=metrics).run(layers)
    bare = PackingPipeline(config).run(layers)

    for observed, reference in zip(result.layers, bare.layers):
        assert observed.grouping.groups == reference.grouping.groups
        np.testing.assert_array_equal(observed.packed.weights,
                                      reference.packed.weights)
        assert set(observed.stage_ns) == set(PIPELINE_STAGES)
        assert all(ns >= 0 for ns in observed.stage_ns.values())
        assert [name for name, _, _ in observed.stage_spans] \
            == list(PIPELINE_STAGES)
        for _, start, end in observed.stage_spans:
            assert 0 <= start <= end
        assert observed.epoch > 1e9
        assert observed.worker_pid > 0

    totals = result.stage_ns_totals()
    assert set(totals) == set(PIPELINE_STAGES)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["packing_layers"] == len(layers)
    for stage in PIPELINE_STAGES:
        key = f'packing_stage_seconds{{stage="{stage}"}}'
        assert snapshot["histograms"][key]["counts"], key
        state = snapshot["histograms"][key]
        assert sum(state["counts"]) == len(layers)


def test_pipeline_metrics_are_schedule_independent():
    """Counter totals and histogram observation counts must not depend
    on how layers were fanned out across pool workers."""
    layers = small_layers(seed=4, count=4)
    config_serial = PipelineConfig(alpha=8, gamma=0.5, workers=1)
    config_parallel = PipelineConfig(alpha=8, gamma=0.5, workers=2)
    serial_metrics = MetricsRegistry()
    parallel_metrics = MetricsRegistry()
    with PackingPipeline(config_serial,
                         metrics=serial_metrics) as pipeline:
        serial = pipeline.run(layers)
    with PackingPipeline(config_parallel,
                         metrics=parallel_metrics) as pipeline:
        parallel = pipeline.run(layers)

    assert serial.layer_names() == parallel.layer_names()
    for a, b in zip(serial.layers, parallel.layers):
        np.testing.assert_array_equal(a.packed.weights, b.packed.weights)

    serial_snapshot = serial_metrics.snapshot()
    parallel_snapshot = parallel_metrics.snapshot()
    # Work counters are exact integers: identical under any schedule.
    assert serial_snapshot["counters"] == parallel_snapshot["counters"]
    # Histogram *timings* differ run to run, but every layer is counted.
    for key, state in serial_snapshot["histograms"].items():
        assert sum(parallel_snapshot["histograms"][key]["counts"]) \
            == sum(state["counts"])


# -- Chrome trace export ------------------------------------------------------
def test_chrome_trace_from_serving_traces():
    trace = Trace("req-000001", "m", epoch=1_000_000.0, anchor=100.0)
    trace.add_span(Span("enqueue", 101.0, 101.5))
    trace.add_span(Span("forward", 101.5, 102.0, {"backend": "thread"}))
    events = chrome_trace_from_traces([trace, trace.to_dict()])
    assert len(events) == 6  # (1 metadata + 2 spans) x 2 traces
    metadata = [e for e in events if e["ph"] == "M"]
    assert all(e["name"] == "thread_name" for e in metadata)
    assert "req-000001" in metadata[0]["args"]["name"]
    spans = [e for e in events if e["ph"] == "X"]
    forward = next(e for e in spans if e["name"] == "forward")
    # Wall-anchored: epoch + (start - anchor), in microseconds.
    assert forward["ts"] == pytest.approx((1_000_000.0 + 1.5) * 1e6)
    assert forward["dur"] == pytest.approx(0.5e6)
    assert forward["args"]["backend"] == "thread"
    assert forward["args"]["trace_id"] == "req-000001"
    json.dumps(events)  # JSON-serializable end to end


def test_chrome_trace_from_pipeline_and_write(tmp_path):
    result = PackingPipeline(PipelineConfig(alpha=8, gamma=0.5)).run(
        small_layers(count=2))
    events = chrome_trace_from_pipeline(result)
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2 * len(PIPELINE_STAGES)
    assert {e["name"] for e in spans} == set(PIPELINE_STAGES)
    assert all(e["dur"] >= 0 for e in spans)

    path = write_chrome_trace(tmp_path / "sub" / "pipeline.json", events)
    document = json.loads(path.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert len(document["traceEvents"]) == len(events)
