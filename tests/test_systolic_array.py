"""Tests for the functional weight-stationary systolic array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combining import group_columns, column_combine_prune, pack_filter_matrix
from repro.systolic import ArrayConfig, SystolicArray


def sparse(rng, rows=24, cols=28, density=0.25):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def test_array_config_defaults_and_validation():
    config = ArrayConfig()
    assert config.rows == config.cols == 32
    assert config.num_cells == 1024
    with pytest.raises(ValueError):
        ArrayConfig(rows=0)
    with pytest.raises(ValueError):
        ArrayConfig(alpha=0)


def test_dense_multiply_is_exact(rng):
    array = SystolicArray(ArrayConfig(rows=32, cols=32))
    matrix = sparse(rng)
    data = rng.normal(size=(28, 9))
    result = array.multiply_dense(matrix, data)
    np.testing.assert_allclose(result.output, matrix @ data)


def test_dense_multiply_counts_macs(rng):
    array = SystolicArray(ArrayConfig(rows=32, cols=32))
    matrix = sparse(rng)
    data = rng.normal(size=(28, 5))
    result = array.multiply_dense(matrix, data)
    assert result.occupied_macs == matrix.size * 5
    assert result.useful_macs == np.count_nonzero(matrix) * 5
    assert 0 < result.utilization < 1


def test_dense_multiply_rejects_oversized_matrix(rng):
    array = SystolicArray(ArrayConfig(rows=8, cols=8))
    with pytest.raises(ValueError):
        array.multiply_dense(rng.normal(size=(9, 8)), rng.normal(size=(8, 2)))


def test_dense_multiply_rejects_mismatched_data(rng):
    array = SystolicArray(ArrayConfig(rows=32, cols=32))
    with pytest.raises(ValueError):
        array.multiply_dense(rng.normal(size=(4, 4)), rng.normal(size=(5, 2)))


def test_packed_multiply_matches_pruned_matrix(rng):
    matrix = sparse(rng)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned, _ = column_combine_prune(matrix, grouping)
    array = SystolicArray(ArrayConfig(rows=32, cols=32, alpha=8))
    data = rng.normal(size=(matrix.shape[1], 11))
    result = array.multiply_packed(packed, data)
    np.testing.assert_allclose(result.output, pruned @ data)


def test_packed_multiply_has_higher_utilization_than_dense(rng):
    matrix = sparse(rng, density=0.15)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    array = SystolicArray(ArrayConfig(rows=32, cols=32, alpha=8))
    data = rng.normal(size=(matrix.shape[1], 7))
    dense_result = array.multiply_dense(matrix, data)
    packed_result = array.multiply_packed(packed, data)
    assert packed_result.utilization > dense_result.utilization
    assert packed_result.cycles <= dense_result.cycles


def test_packed_multiply_rejects_excessive_multiplexing(rng):
    matrix = sparse(rng, density=0.05)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    if packed.multiplexing_degree() <= 2:
        pytest.skip("grouping did not exercise multiplexing")
    array = SystolicArray(ArrayConfig(rows=32, cols=32, alpha=2))
    with pytest.raises(ValueError):
        array.multiply_packed(packed, rng.normal(size=(matrix.shape[1], 2)))


def test_zero_utilization_when_no_macs():
    from repro.systolic.array import MatmulResult
    result = MatmulResult(output=np.zeros((1, 1)), cycles=0, useful_macs=0, occupied_macs=0)
    assert result.utilization == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), words=st.integers(1, 16))
def test_property_packed_and_dense_agree_on_unpruned_weights(seed, words):
    """Where no conflicts exist (gamma=0 grouping), packed execution equals
    the original dense product exactly."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(12, 16)) * (rng.random((12, 16)) < 0.15)
    grouping = group_columns(matrix, alpha=8, gamma=0.0)
    packed = pack_filter_matrix(matrix, grouping, prune_conflicts=False)
    data = rng.normal(size=(16, words))
    array = SystolicArray(ArrayConfig(rows=16, cols=16, alpha=8))
    np.testing.assert_allclose(array.multiply_packed(packed, data).output,
                               matrix @ data, atol=1e-9)
