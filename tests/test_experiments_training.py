"""Integration tests for the training-based experiment runners.

These run Algorithm 1 on very small configurations (tiny synthetic data,
scaled models, one epoch per round) so that the full experiment code path —
including sweeps — is exercised quickly.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import fig13a, fig13b, fig13c, fig15b
from repro.experiments.common import (
    DATASET_FOR_MODEL,
    FAST_RUN,
    combine_config,
    history_series,
    prepare_data,
    prepare_model,
    run_column_combining,
)
from repro.utils.config import RunConfig

#: Every test in this module runs real training epochs; keep them out of
#: the quick ``-m "not slow"`` tier (the full tier-1 gate still runs them).
pytestmark = pytest.mark.slow

TINY_RUN = RunConfig(train_samples=128, test_samples=64, image_size=8,
                     epochs_per_round=1, final_epochs=1, batch_size=32,
                     model_scale=0.25)


# -- common helpers -------------------------------------------------------------------

def test_prepare_data_matches_model_channels():
    for model_name, kind in DATASET_FOR_MODEL.items():
        train, test = prepare_data(kind, TINY_RUN)
        model = prepare_model(model_name, TINY_RUN)
        logits = model.forward(train.images[:2])
        assert logits.shape == (2, 10)
        assert len(test) == TINY_RUN.test_samples


def test_prepare_data_rejects_unknown_kind():
    with pytest.raises(ValueError):
        prepare_data("imagenet", TINY_RUN)


def test_combine_config_uses_run_settings():
    config = combine_config(TINY_RUN, alpha=4, gamma=0.3)
    assert config.alpha == 4
    assert config.gamma == 0.3
    assert config.epochs_per_round == TINY_RUN.epochs_per_round
    assert config.batch_size == TINY_RUN.batch_size


def test_run_column_combining_returns_trainer_and_history():
    result = run_column_combining("lenet5", TINY_RUN)
    assert result["final_nonzeros"] < result["trainer"].initial_nonzeros
    assert 0.0 <= result["final_accuracy"] <= 1.0
    assert 0.0 < result["utilization"] <= 1.0


def test_run_config_scaled_returns_modified_copy():
    scaled = FAST_RUN.scaled(train_samples=7)
    assert scaled.train_samples == 7
    assert FAST_RUN.train_samples != 7
    assert scaled.to_dict()["image_size"] == FAST_RUN.image_size


# -- Figure 13a ---------------------------------------------------------------------------

def test_fig13a_series_are_consistent():
    result = fig13a.run(TINY_RUN)
    series = result["series"]
    assert len(series["epoch"]) == len(series["test_accuracy"]) == len(series["nonzeros"])
    # Nonzeros only ever decrease (pruning never resurrects weights).
    nonzeros = series["nonzeros"]
    assert all(a >= b for a, b in zip(nonzeros, nonzeros[1:]))
    assert result["final_nonzeros"] < result["initial_nonzeros"]
    assert len(series["pruning_epochs"]) >= 1
    assert not math.isnan(result["final_accuracy"])


def test_history_series_helper_matches_history():
    result = run_column_combining("lenet5", TINY_RUN)
    series = history_series(result["history"])
    assert series["epoch"] == result["history"].epochs()


# -- Figures 13b / 13c ----------------------------------------------------------------------

def test_fig13b_alpha_sweep_improves_utilization():
    result = fig13b.run(TINY_RUN, model_name="lenet5", alphas=(1, 4))
    points = {p["alpha"]: p for p in result["points"]}
    assert points[4]["utilization"] > points[1]["utilization"]
    for point in result["points"]:
        assert 0.0 <= point["accuracy"] <= 1.0


def test_fig13c_gamma_sweep_improves_utilization():
    result = fig13c.run(TINY_RUN, model_name="lenet5", gammas=(0.1, 0.9))
    points = {p["gamma"]: p for p in result["points"]}
    assert points[0.9]["utilization"] >= points[0.1]["utilization"]


# -- Figure 15b -----------------------------------------------------------------------------

def test_fig15b_runs_both_variants_on_a_data_fraction():
    """The integration check exercises the runner; the accuracy *trend*
    (pretrained >= new at small fractions) is asserted by the Figure 15b
    benchmark at a scale where it is not dominated by noise."""
    result = fig15b.run(TINY_RUN, fractions=(0.25,), pretrain_epochs=3)
    point = result["points"][0]
    assert point["fraction"] == 0.25
    assert 0.0 <= point["new_model_accuracy"] <= 1.0
    assert 0.0 <= point["pretrained_model_accuracy"] <= 1.0
    # Very loose ordering check: at this tiny scale the comparison is noisy,
    # but the pretrained start should never be catastrophically worse.
    assert point["pretrained_model_accuracy"] >= point["new_model_accuracy"] - 0.2
