"""Tests for the bit-serial MAC and the BL / IL / MX cell models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic import BitSerialMAC, BLCell, ILCell, MXCell, bit_serial_multiply


# -- bit-serial multiplication -------------------------------------------------

def test_bit_serial_multiply_matches_integer_product():
    product, cycles = bit_serial_multiply(200, 57)
    assert product == 200 * 57
    assert cycles == 8


def test_bit_serial_multiply_handles_negative_weights():
    product, _ = bit_serial_multiply(100, -3)
    assert product == -300


def test_bit_serial_multiply_zero_cases():
    assert bit_serial_multiply(0, 127)[0] == 0
    assert bit_serial_multiply(255, 0)[0] == 0


def test_bit_serial_multiply_validates_ranges():
    with pytest.raises(ValueError):
        bit_serial_multiply(256, 1)
    with pytest.raises(ValueError):
        bit_serial_multiply(1, 256)
    with pytest.raises(ValueError):
        bit_serial_multiply(-1, 1)


@settings(max_examples=50, deadline=None)
@given(x=st.integers(0, 255), w=st.integers(-128, 127))
def test_property_bit_serial_multiply_is_exact(x, w):
    """The shift-and-add serial schedule computes exactly x * w."""
    product, cycles = bit_serial_multiply(x, w)
    assert product == x * w
    assert cycles == 8


# -- BitSerialMAC -----------------------------------------------------------------

def test_mac_accumulates_products():
    mac = BitSerialMAC(weight=3)
    y, cycles = mac.step(10, 5)
    assert y == 35
    assert cycles == 32  # 32-bit accumulation dominates


def test_mac_16bit_accumulation_halves_cycles():
    mac = BitSerialMAC(weight=1, accumulation_bits=16)
    _, cycles = mac.step(1, 0)
    assert cycles == 16


def test_mac_tracks_elapsed_cycles_and_resets():
    mac = BitSerialMAC(weight=2)
    mac.step(1, 0)
    mac.step(1, 0)
    assert mac.cycles_elapsed == 64
    mac.reset()
    assert mac.cycles_elapsed == 0


def test_mac_weight_range_validation():
    with pytest.raises(ValueError):
        BitSerialMAC(weight=200)
    mac = BitSerialMAC()
    with pytest.raises(ValueError):
        mac.load_weight(-200)


def test_mac_accumulation_narrower_than_input_rejected():
    with pytest.raises(ValueError):
        BitSerialMAC(accumulation_bits=4, input_bits=8)


# -- cells ---------------------------------------------------------------------------

def test_bl_cell_single_stream_mac():
    cell = BLCell(weight=5)
    assert cell.process(3, 10) == 25


def test_il_cell_processes_four_interleaved_streams():
    cell = ILCell(weight=2)
    ys = cell.process([1, 2, 3, 4], [0, 0, 0, 0])
    assert ys == [2, 4, 6, 8]


def test_il_cell_validates_stream_count():
    cell = ILCell(weight=1)
    with pytest.raises(ValueError):
        cell.process([1, 2], [0, 0])


def test_il_cell_streams_are_independent():
    cell = ILCell(weight=1, streams=2)
    first = cell.process([10, 20], [1, 2])
    second = cell.process([1, 1], first)
    assert second == [12, 23]


def test_mx_cell_selects_configured_channel():
    cell = MXCell(weight=3, channel_select=1, alpha=4)
    assert cell.process([100, 7, 50], 0) == 21


def test_mx_cell_empty_cell_passes_accumulation_through():
    cell = MXCell(weight=0, channel_select=None)
    assert cell.process([5, 6], 42) == 42


def test_mx_cell_load_weight_updates_selection():
    cell = MXCell(alpha=4)
    cell.load_weight(-2, channel_select=0)
    assert cell.process([10, 99], 0) == -20


def test_mx_cell_validates_channel_select():
    with pytest.raises(ValueError):
        MXCell(weight=1, channel_select=9, alpha=8)
    cell = MXCell(alpha=2)
    with pytest.raises(ValueError):
        cell.load_weight(1, channel_select=5)


def test_mx_cell_rejects_too_many_channels():
    cell = MXCell(weight=1, channel_select=0, alpha=2)
    with pytest.raises(ValueError):
        cell.process([1, 2, 3], 0)


def test_mx_cell_channel_select_beyond_provided_words_raises():
    cell = MXCell(weight=1, channel_select=3, alpha=8)
    with pytest.raises(ValueError):
        cell.process([1, 2], 0)


def test_mx_cell_column_computes_packed_dot_product(rng):
    """A column of MX cells computes the combined-column dot product: each
    cell multiplies the channel its weight came from, and the partial sums
    accumulate down the column."""
    weights = [3, -2, 0, 7]
    selects = [0, 2, None, 1]
    cells = [MXCell(weight=w, channel_select=s, alpha=4)
             for w, s in zip(weights, selects)]
    # Input data is unsigned 8-bit (activations after ReLU and quantization).
    channels = [5, 11, 4]
    outputs = [cell.process(channels, 0) for cell in cells]
    expected = [3 * 5, -2 * 4, 0, 7 * 11]
    assert outputs == expected
