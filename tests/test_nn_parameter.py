"""Tests for Parameter: masks, gradients, and nonzero accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Parameter


def test_parameter_holds_data_and_zero_grad():
    param = Parameter(np.arange(6, dtype=float).reshape(2, 3), name="w")
    assert param.shape == (2, 3)
    assert param.size == 6
    assert np.all(param.grad == 0)


def test_zero_grad_resets_gradient():
    param = Parameter(np.ones((2, 2)))
    param.grad += 3.0
    param.zero_grad()
    assert np.all(param.grad == 0)


def test_set_mask_zeroes_masked_weights():
    param = Parameter(np.ones((2, 2)))
    param.set_mask(np.array([[1, 0], [0, 1]]))
    assert param.data[0, 1] == 0
    assert param.data[1, 0] == 0
    assert param.data[0, 0] == 1


def test_set_mask_rejects_wrong_shape():
    param = Parameter(np.ones((2, 2)))
    with pytest.raises(ValueError):
        param.set_mask(np.ones((3, 3)))


def test_apply_mask_also_masks_gradient():
    param = Parameter(np.ones((2, 2)))
    param.set_mask(np.array([[1, 0], [1, 1]]))
    param.grad[:] = 5.0
    param.apply_mask()
    assert param.grad[0, 1] == 0
    assert param.grad[1, 1] == 5.0


def test_nonzero_count_uses_mask_when_present():
    param = Parameter(np.ones((3, 3)))
    assert param.nonzero_count() == 9
    param.set_mask(np.eye(3))
    assert param.nonzero_count() == 3


def test_nonzero_count_counts_data_when_dense():
    param = Parameter(np.array([[0.0, 1.0], [2.0, 0.0]]))
    assert param.nonzero_count() == 2


def test_clear_mask_restores_dense_behaviour():
    param = Parameter(np.ones((2, 2)))
    param.set_mask(np.zeros((2, 2)))
    param.clear_mask()
    param.data[:] = 1.0
    assert param.nonzero_count() == 4


def test_mask_is_binary_even_for_float_input():
    param = Parameter(np.ones((2, 2)))
    param.set_mask(np.array([[0.5, 0.0], [2.0, 0.0]]))
    assert set(np.unique(param.mask)) <= {0.0, 1.0}
