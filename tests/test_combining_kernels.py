"""Batch-invariant kernels: the bit contract behind deterministic serving.

Each kernel (``"blocked"`` BLAS-backed, ``"loops"`` einsum reference)
must be bitwise batch-invariant with respect to itself: forwarding a
batch and forwarding any split of it concatenate to the exact same bits.
The blocked kernel additionally must be layout-insensitive (Fortran or
strided operands produce the same bits as contiguous ones) because BLAS
picks different — differently rounded — code paths per layout.  Across
kernels the contract is numerical equivalence, not bit equality: the
blocked path fuses multiplies into BLAS dot products while the loops
path reduces scalar-by-scalar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    DEFAULT_KERNEL,
    KERNELS,
    PackedModel,
    PipelineConfig,
    QuantizedPackedModel,
    invariant_conv_pointwise,
    invariant_matmul,
    kernel_schedule,
    validate_kernel,
)
from repro.combining.kernels import K_BLOCK, M_TILE
from repro.models import build_model

# Odd / prime reduction sizes straddling the K_BLOCK boundary, plus a
# tail-heavy multiple-of-block case.
K_SIZES = [3, 13, 97, 613]
SPLITS = [(0, 1), (1, 4), (4, 20), (0, 3), (3, 19), (19, 20)]


def rng_pair_matmul(k: int, batch: int = 20, n: int = 7, seed: int = 0,
                    dtype=np.float64):
    rng = np.random.default_rng(seed + k)
    x = rng.normal(size=(batch, k)).astype(dtype)
    weight = rng.normal(size=(n, k)).astype(dtype)
    return x, weight


def rng_pair_conv(c: int, batch: int = 20, n: int = 7, hw: tuple = (5, 3),
                  seed: int = 0, dtype=np.float64):
    rng = np.random.default_rng(seed + c)
    x = rng.normal(size=(batch, c, *hw)).astype(dtype)
    weight = rng.normal(size=(n, c)).astype(dtype)
    return x, weight


# -- batch invariance: splits concatenate to the whole-batch bits ------------
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("k", K_SIZES)
def test_matmul_batch_splits_are_bit_identical(kernel, k):
    x, weight = rng_pair_matmul(k)
    full = invariant_matmul(x, weight, kernel=kernel)
    for start, stop in SPLITS:
        chunk = invariant_matmul(x[start:stop], weight, kernel=kernel)
        assert np.array_equal(full[start:stop], chunk)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("c", K_SIZES)
def test_conv_batch_splits_are_bit_identical(kernel, c):
    x, weight = rng_pair_conv(c)
    full = invariant_conv_pointwise(x, weight, kernel=kernel)
    for start, stop in SPLITS:
        chunk = invariant_conv_pointwise(x[start:stop], weight, kernel=kernel)
        assert np.array_equal(full[start:stop], chunk)


@pytest.mark.parametrize("kernel", KERNELS)
def test_concatenated_1_3_16_splits_equal_whole_batch(kernel):
    """The serving coalescing shape: 1 + 3 + 16 samples == one batch."""
    x, weight = rng_pair_matmul(k=131)
    parts = [invariant_matmul(x[s], weight, kernel=kernel)
             for s in (slice(0, 1), slice(1, 4), slice(4, 20))]
    assert np.array_equal(np.concatenate(parts), invariant_matmul(
        x, weight, kernel=kernel))
    xc, wc = rng_pair_conv(c=131)
    parts = [invariant_conv_pointwise(xc[s], wc, kernel=kernel)
             for s in (slice(0, 1), slice(1, 4), slice(4, 20))]
    assert np.array_equal(np.concatenate(parts), invariant_conv_pointwise(
        xc, wc, kernel=kernel))


# -- layout insensitivity ----------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_fortran_ordered_operands_produce_the_same_bits(kernel):
    x, weight = rng_pair_matmul(k=613)
    reference = invariant_matmul(x, weight, kernel=kernel)
    assert np.array_equal(
        invariant_matmul(np.asfortranarray(x), np.asfortranarray(weight),
                         kernel=kernel), reference)
    xc, wc = rng_pair_conv(c=97)
    conv_reference = invariant_conv_pointwise(xc, wc, kernel=kernel)
    assert np.array_equal(
        invariant_conv_pointwise(np.asfortranarray(xc), np.asfortranarray(wc),
                                 kernel=kernel), conv_reference)


@pytest.mark.parametrize("kernel", KERNELS)
def test_strided_views_produce_the_same_bits(kernel):
    """Non-contiguous activations (the shape StrideOp hands downstream)."""
    x, weight = rng_pair_matmul(k=97, batch=40)
    strided = x[::2]
    assert not strided.flags["C_CONTIGUOUS"]
    assert np.array_equal(
        invariant_matmul(strided, weight, kernel=kernel),
        invariant_matmul(np.ascontiguousarray(strided), weight,
                         kernel=kernel))
    xc, wc = rng_pair_conv(c=13, batch=40, hw=(6, 6))
    strided_view = xc[::2, :, ::2, ::2]
    assert not strided_view.flags["C_CONTIGUOUS"]
    assert np.array_equal(
        invariant_conv_pointwise(strided_view, wc, kernel=kernel),
        invariant_conv_pointwise(np.ascontiguousarray(strided_view), wc,
                                 kernel=kernel))


# -- degenerate shapes and dtypes --------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_empty_batch_returns_empty_output(kernel):
    out = invariant_matmul(np.empty((0, 17)), np.ones((5, 17)), kernel=kernel)
    assert out.shape == (0, 5)
    conv = invariant_conv_pointwise(np.empty((0, 3, 4, 4)), np.ones((5, 3)),
                                    kernel=kernel)
    assert conv.shape == (0, 5, 4, 4)


@pytest.mark.parametrize("kernel", KERNELS)
def test_zero_reduction_dimension_yields_zeros(kernel):
    out = invariant_matmul(np.empty((4, 0)), np.empty((5, 0)), kernel=kernel)
    assert out.shape == (4, 5) and not out.any()
    conv = invariant_conv_pointwise(np.empty((4, 0, 2, 2)), np.empty((5, 0)),
                                    kernel=kernel)
    assert conv.shape == (4, 5, 2, 2) and not conv.any()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dtype_is_preserved_and_splits_stay_bit_identical(kernel, dtype):
    x, weight = rng_pair_matmul(k=613, dtype=dtype)
    full = invariant_matmul(x, weight, kernel=kernel)
    assert full.dtype == dtype
    assert np.array_equal(full[1:4],
                          invariant_matmul(x[1:4], weight, kernel=kernel))
    xc, wc = rng_pair_conv(c=97, dtype=dtype)
    conv = invariant_conv_pointwise(xc, wc, kernel=kernel)
    assert conv.dtype == dtype
    assert np.array_equal(
        conv[1:4], invariant_conv_pointwise(xc[1:4], wc, kernel=kernel))


# -- cross-kernel equivalence ------------------------------------------------
def test_blocked_and_loops_are_numerically_equivalent():
    for k in K_SIZES:
        x, weight = rng_pair_matmul(k)
        assert np.allclose(invariant_matmul(x, weight, kernel="blocked"),
                           invariant_matmul(x, weight, kernel="loops"),
                           rtol=1e-9, atol=1e-11)
        xc, wc = rng_pair_conv(k)
        assert np.allclose(
            invariant_conv_pointwise(xc, wc, kernel="blocked"),
            invariant_conv_pointwise(xc, wc, kernel="loops"),
            rtol=1e-9, atol=1e-11)


def test_loops_kernel_matches_legacy_einsum_bits():
    """The loops path IS the pre-kernel einsum — bitwise, on the
    contiguous inputs every legacy call site passed."""
    x, weight = rng_pair_matmul(k=97)
    assert np.array_equal(invariant_matmul(x, weight, kernel="loops"),
                          np.einsum("bi,oi->bo", x, weight))
    xc, wc = rng_pair_conv(c=97)
    assert np.array_equal(invariant_conv_pointwise(xc, wc, kernel="loops"),
                          np.einsum("nc,bchw->bnhw", wc, xc))


# -- schedule and validation -------------------------------------------------
def test_kernel_schedule_covers_the_reduction_exactly_once():
    for k in [0, 1, K_BLOCK - 1, K_BLOCK, K_BLOCK + 1, 3 * K_BLOCK + 7]:
        schedule = kernel_schedule(k)
        covered = [i for start, stop in schedule for i in range(start, stop)]
        assert covered == list(range(k))
        assert all(stop - start <= K_BLOCK for start, stop in schedule)
    with pytest.raises(ValueError, match=">= 0"):
        kernel_schedule(-1)


def test_kernel_schedule_depends_only_on_the_reduction_dimension():
    # The whole invariance argument: the schedule is a pure function of
    # k — no batch size anywhere in its signature.
    assert kernel_schedule(613) == kernel_schedule(613)
    assert kernel_schedule(K_BLOCK) == ((0, K_BLOCK),)
    assert M_TILE > 0 and K_BLOCK > 0


def test_validate_kernel_rejects_unknown_names():
    assert DEFAULT_KERNEL in KERNELS
    for kernel in KERNELS:
        validate_kernel(kernel)
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        validate_kernel("warp")
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        invariant_matmul(np.ones((2, 3)), np.ones((4, 3)), kernel="warp")
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        invariant_conv_pointwise(np.ones((2, 3, 2, 2)), np.ones((4, 3)),
                                 kernel="warp")


def test_kernels_validate_operand_shapes():
    with pytest.raises(ValueError, match="matmul"):
        invariant_matmul(np.ones((2, 3)), np.ones((4, 5)))
    with pytest.raises(ValueError, match="pointwise"):
        invariant_conv_pointwise(np.ones((2, 3, 2, 2)), np.ones((4, 5)))
    with pytest.raises(ValueError, match="pointwise"):
        invariant_conv_pointwise(np.ones((2, 3, 2)), np.ones((4, 3)))


# -- end to end through plans and models -------------------------------------
MODEL_KWARGS = {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                "image_size": 8}


@pytest.fixture(scope="module")
def packed() -> PackedModel:
    model = build_model("lenet5", rng=np.random.default_rng(3),
                        **MODEL_KWARGS)
    mask_rng = np.random.default_rng(4)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    return PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))


@pytest.mark.parametrize("kernel", KERNELS)
def test_plan_forward_is_batch_invariant_per_kernel(packed, kernel):
    plan = packed.compile_plan()
    images = np.random.default_rng(0).normal(size=(11, 1, 8, 8))
    full = plan.forward(images, batch_invariant=True, kernel=kernel)
    for start, stop in [(0, 1), (1, 4), (4, 11)]:
        chunk = plan.forward(images[start:stop], batch_invariant=True,
                             kernel=kernel)
        assert np.array_equal(full[start:stop], chunk)


@pytest.mark.parametrize("kernel", KERNELS)
def test_plan_and_model_forwards_share_bits_per_kernel(packed, kernel):
    plan = packed.compile_plan()
    images = np.random.default_rng(1).normal(size=(5, 1, 8, 8))
    for mode in ["exact", "mx"]:
        assert np.array_equal(
            plan.forward(images, mode=mode, batch_invariant=True,
                         kernel=kernel),
            packed.forward(images, mode=mode, batch_invariant=True,
                           kernel=kernel))


def test_quantized_forward_accepts_kernel(packed):
    quantized = QuantizedPackedModel(packed, bits=8)
    quantized.calibrate(np.random.default_rng(7).normal(size=(16, 1, 8, 8)))
    images = np.random.default_rng(2).normal(size=(9, 1, 8, 8))
    for kernel in KERNELS:
        full = quantized.forward(images, track_errors=False,
                                 batch_invariant=True, kernel=kernel)
        chunk = quantized.forward(images[2:5], track_errors=False,
                                  batch_invariant=True, kernel=kernel)
        assert np.array_equal(full[2:5], chunk)
    blocked = quantized.forward(images, track_errors=False,
                                batch_invariant=True, kernel="blocked")
    loops = quantized.forward(images, track_errors=False,
                              batch_invariant=True, kernel="loops")
    assert np.allclose(blocked, loops, rtol=1e-9, atol=1e-11)


def test_plan_forward_rejects_unknown_kernel(packed):
    plan = packed.compile_plan()
    images = np.zeros((1, 1, 8, 8))
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        plan.forward(images, batch_invariant=True, kernel="warp")
    with pytest.raises(ValueError, match="unknown batch-invariant kernel"):
        packed.forward(images, batch_invariant=True, kernel="warp")
